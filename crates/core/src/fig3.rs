//! Figure 3 — strong scaling of LINPACK, SPECFEM3D and BigDFT on
//! Tibidabo.
//!
//! Wraps `mb-cluster`'s [`ScalingStudy`] with the paper's core-count
//! grids and speedup normalisations: LINPACK up to ~104 cores (Fig 3a),
//! SPECFEM3D up to 192 cores normalised "versus a 4 core run" (Fig 3b),
//! BigDFT up to 36 cores (Fig 3c). The effective per-core rate fed to
//! the skeletons is *measured* on the Tegra2 machine model by costing
//! the real SPECFEM kernel, not assumed.

use crate::platform::Platform;
use mb_cluster::scaling::{FabricKind, ResilientSeries, ScalingSeries, ScalingStudy};
use mb_cluster::workload::Workload;
use mb_energy::{Energy, PowerModel, RetransmissionModel};
use mb_faults::FaultConfig;
use mb_kernels::specfem::{Specfem, SpecfemConfig};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Which Figure 3 panel to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Panel {
    /// Figure 3a: LINPACK.
    Linpack,
    /// Figure 3b: SPECFEM3D.
    Specfem,
    /// Figure 3c: BigDFT.
    BigDft,
}

/// Configuration of the Figure 3 experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig3Config {
    /// Core counts for the LINPACK panel.
    pub linpack_cores: Vec<u32>,
    /// Core counts for the SPECFEM panel (baseline 4, per the paper).
    pub specfem_cores: Vec<u32>,
    /// Core counts for the BigDFT panel.
    pub bigdft_cores: Vec<u32>,
    /// Iteration counts (scaled down for quick runs).
    pub iterations: u32,
}

impl Fig3Config {
    /// Fast test configuration.
    pub fn quick() -> Self {
        Fig3Config {
            linpack_cores: vec![8, 32, 104],
            specfem_cores: vec![4, 48, 192],
            bigdft_cores: vec![4, 16, 36],
            iterations: 4,
        }
    }

    /// The full grids of the paper's plots.
    pub fn paper() -> Self {
        Fig3Config {
            linpack_cores: vec![2, 4, 8, 16, 32, 64, 104],
            specfem_cores: vec![4, 8, 16, 32, 64, 96, 128, 192],
            bigdft_cores: vec![2, 4, 8, 12, 16, 24, 32, 36],
            iterations: 6,
        }
    }
}

/// Cached result of the one-time SPECFEM element-kernel calibration.
static TEGRA2_GFLOPS: OnceLock<f64> = OnceLock::new();

/// How many times the calibration closure actually ran in this process
/// — the `validate` build counter-asserts it stays at one no matter how
/// many slots, campaigns or figure runs ask for the rate.
#[cfg(feature = "validate")]
static TEGRA2_CALIBRATIONS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Number of times [`tegra2_effective_gflops`] has executed its
/// calibration (not merely returned the cached value). `OnceLock`
/// guarantees this never exceeds one per process.
#[cfg(feature = "validate")]
pub fn tegra2_calibration_count() -> usize {
    TEGRA2_CALIBRATIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Measures the effective per-core double-precision rate of the Tegra2
/// model by costing the real SPECFEM element kernel, in GFLOPS.
///
/// The calibration is a pure deterministic function of the machine
/// model, so it is computed once per process and cached: campaign slot
/// streams ask for the rate per slot, and a paper-grid campaign would
/// otherwise rerun the SPECFEM kernel thousands of times for the same
/// bits.
pub fn tegra2_effective_gflops() -> f64 {
    *TEGRA2_GFLOPS.get_or_init(|| {
        #[cfg(feature = "validate")]
        TEGRA2_CALIBRATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let platform = Platform::tegra2_node();
        let mut exec = platform.exec(1);
        let mut sim = Specfem::new(SpecfemConfig::table2());
        sim.run(40, &mut exec);
        let r = exec.finish();
        r.gflops()
    })
}

/// The workload for one panel, with the measured core rate injected.
pub fn workload(panel: Panel, iterations: u32) -> Workload {
    let rate = tegra2_effective_gflops();
    let w = match panel {
        Panel::Linpack => Workload::linpack_tibidabo(),
        Panel::Specfem => Workload::specfem_tibidabo(),
        Panel::BigDft => Workload::bigdft_tibidabo(),
    };
    w.with_core_gflops(rate).with_iterations(iterations)
}

/// The three panels of Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Report {
    /// Fig 3a.
    pub linpack: ScalingSeries,
    /// Fig 3b.
    pub specfem: ScalingSeries,
    /// Fig 3c.
    pub bigdft: ScalingSeries,
    /// The measured Tegra2 per-core rate used (GFLOPS).
    pub core_gflops: f64,
}

/// Runs the whole Figure 3 experiment on the commodity Tibidabo fabric.
pub fn run(cfg: &Fig3Config) -> Fig3Report {
    run_on(cfg, FabricKind::Tibidabo)
}

/// Runs Figure 3 on a chosen fabric (the upgraded variant is the §IV
/// ablation).
pub fn run_on(cfg: &Fig3Config, fabric: FabricKind) -> Fig3Report {
    let study = ScalingStudy::new(fabric);
    let core_gflops = tegra2_effective_gflops();
    let make = |panel: Panel| {
        
        match panel {
            Panel::Linpack => Workload::linpack_tibidabo(),
            Panel::Specfem => Workload::specfem_tibidabo(),
            Panel::BigDft => Workload::bigdft_tibidabo(),
        }
        .with_core_gflops(core_gflops)
        .with_iterations(cfg.iterations)
    };
    Fig3Report {
        linpack: study.run(&make(Panel::Linpack), &cfg.linpack_cores),
        specfem: study.run(&make(Panel::Specfem), &cfg.specfem_cores),
        bigdft: study.run(&make(Panel::BigDft), &cfg.bigdft_cores),
        core_gflops,
    }
}

/// Figure 3 rerun under injected faults: the same three panels, each a
/// degraded-but-completed [`ResilientSeries`] with retry/timeout/crash
/// counters per point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3FaultReport {
    /// Fig 3a under faults.
    pub linpack: ResilientSeries,
    /// Fig 3b under faults.
    pub specfem: ResilientSeries,
    /// Fig 3c under faults.
    pub bigdft: ResilientSeries,
    /// The measured Tegra2 per-core rate used (GFLOPS).
    pub core_gflops: f64,
}

impl Fig3FaultReport {
    /// Mean parallel efficiency across every completed point of every
    /// panel — the single number the `fault_ablation` bench plots
    /// against the fault rate.
    pub fn mean_efficiency(&self) -> f64 {
        let effs: Vec<f64> = [&self.linpack, &self.specfem, &self.bigdft]
            .into_iter()
            .flat_map(|s| s.points.iter().map(|p| p.point.efficiency))
            .collect();
        if effs.is_empty() {
            return 0.0;
        }
        effs.iter().sum::<f64>() / effs.len() as f64
    }

    /// Summed resilience counters across all panels and points.
    pub fn total_stats(&self) -> mb_mpi::ResilienceStats {
        let mut total = mb_mpi::ResilienceStats::default();
        for s in [&self.linpack, &self.specfem, &self.bigdft] {
            for p in &s.points {
                total.retries += p.stats.retries;
                total.timeouts += p.stats.timeouts;
                total.skipped_messages += p.stats.skipped_messages;
                total.crashed_ranks += p.stats.crashed_ranks;
            }
        }
        total
    }

    /// Energy to solution of the whole faulted campaign on Tibidabo:
    /// every point charges its occupied nodes at the Tegra2 nameplate
    /// power for its (degraded) makespan, **plus** the retransmission
    /// surcharge for the retries and timeouts it recorded — closing the
    /// gap where faulted runs reported time degradation only.
    pub fn total_energy(&self) -> Energy {
        let node = PowerModel::tegra2_node().nameplate();
        let retrans = RetransmissionModel::tibidabo_gbe();
        [&self.linpack, &self.specfem, &self.bigdft]
            .into_iter()
            .fold(Energy::default(), |acc, s| {
                acc + s.total_energy(node, &retrans)
            })
    }
}

/// Runs Figure 3 on the commodity Tibidabo fabric with a deterministic
/// fault plan injected at every point. With [`FaultConfig::none`] the
/// numbers are bit-identical to [`run`] (the plan is never installed);
/// with real fault rates each panel completes degraded — crashed ranks
/// drop out, dropped messages retransmit with backoff — instead of
/// dying. Same seed, same config ⇒ same report, at any worker count.
pub fn run_faulted(cfg: &Fig3Config, faults: FaultConfig) -> Fig3FaultReport {
    let study = ScalingStudy::new(FabricKind::Tibidabo).with_faults(faults);
    let core_gflops = tegra2_effective_gflops();
    let make = |panel: Panel| {
        match panel {
            Panel::Linpack => Workload::linpack_tibidabo(),
            Panel::Specfem => Workload::specfem_tibidabo(),
            Panel::BigDft => Workload::bigdft_tibidabo(),
        }
        .with_core_gflops(core_gflops)
        .with_iterations(cfg.iterations)
    };
    Fig3FaultReport {
        linpack: study.run_resilient(&make(Panel::Linpack), &cfg.linpack_cores),
        specfem: study.run_resilient(&make(Panel::Specfem), &cfg.specfem_cores),
        bigdft: study.run_resilient(&make(Panel::BigDft), &cfg.bigdft_cores),
        core_gflops,
    }
}

// --- Slot-level campaign API (mb-lab) -----------------------------------
//
// A persistent experiment driver cannot hold a half-finished
// `Fig3Report` across a process restart; it persists *per-slot*
// measurements and reassembles the report afterwards. These functions
// expose exactly that decomposition: one slot per (panel, core count)
// pair, in the canonical panel-major order, with a pure measurement
// function and a finalizer whose output stream is bit-identical to the
// values a monolithic [`run`] / [`run_faulted`] produces (the speedup
// normalisation is the same f64 arithmetic on the same f64 times).

/// The campaign slots of a Figure 3 config, in canonical order:
/// LINPACK counts, then SPECFEM, then BigDFT.
pub fn scaling_slots(cfg: &Fig3Config) -> Vec<(Panel, u32)> {
    let panel = |p: Panel, counts: &[u32]| counts.iter().map(|&c| (p, c)).collect::<Vec<_>>();
    let mut slots = panel(Panel::Linpack, &cfg.linpack_cores);
    slots.extend(panel(Panel::Specfem, &cfg.specfem_cores));
    slots.extend(panel(Panel::BigDft, &cfg.bigdft_cores));
    slots
}

/// Human-readable label of one campaign slot.
pub fn slot_label(panel: Panel, cores: u32) -> String {
    let name = match panel {
        Panel::Linpack => "linpack",
        Panel::Specfem => "specfem",
        Panel::BigDft => "bigdft",
    };
    format!("{name}@{cores}c")
}

fn slot_workload(panel: Panel, core_gflops: f64, iterations: u32) -> Workload {
    match panel {
        Panel::Linpack => Workload::linpack_tibidabo(),
        Panel::Specfem => Workload::specfem_tibidabo(),
        Panel::BigDft => Workload::bigdft_tibidabo(),
    }
    .with_core_gflops(core_gflops)
    .with_iterations(iterations)
}

/// Measures one healthy slot: the simulated makespan, in seconds — a
/// pure function of `(panel, cores, core_gflops, iterations)`, so any
/// shard or resumed process reproduces it bit for bit.
pub fn measure_scaling_slot(cfg: &Fig3Config, panel: Panel, cores: u32, core_gflops: f64) -> f64 {
    let study = ScalingStudy::new(FabricKind::Tibidabo);
    let w = slot_workload(panel, core_gflops, cfg.iterations);
    study.execute(&w, cores, false).0.as_secs_f64()
}

/// Measures one fault-injected slot under `faults`, returning
/// `[secs, retries, timeouts, skipped, crashed, surviving]`.
pub fn measure_faulted_slot(
    cfg: &Fig3Config,
    faults: FaultConfig,
    panel: Panel,
    cores: u32,
    core_gflops: f64,
) -> [f64; 6] {
    let study = ScalingStudy::new(FabricKind::Tibidabo).with_faults(faults);
    let w = slot_workload(panel, core_gflops, cfg.iterations);
    let out = study.execute_outcome(&w, cores, false);
    [
        out.time.as_secs_f64(),
        out.stats.retries as f64,
        out.stats.timeouts as f64,
        out.stats.skipped_messages as f64,
        out.stats.crashed_ranks as f64,
        f64::from(out.surviving_ranks),
    ]
}

/// The element-name table a Figure 3 slot at `cores` resolves
/// name-addressed faults against — the fabric
/// [`measure_planned_slot`] instantiates for that slot.
pub fn slot_element_names(cores: u32) -> mb_faults::ElementNames {
    ScalingStudy::new(FabricKind::Tibidabo).element_names(cores)
}

/// Measures one slot under an explicitly supplied fault plan
/// (typically resolved from name-addressed faults against
/// [`slot_element_names`]), returning the same payload shape as
/// [`measure_faulted_slot`]: `[secs, retries, timeouts, skipped,
/// crashed, surviving]`. A pure function of its arguments — and, since
/// a resolved named plan *is* an index plan, bit-identical to the same
/// slot measured under the equivalent index-addressed plan.
pub fn measure_planned_slot(
    cfg: &Fig3Config,
    plan: &mb_faults::FaultPlan,
    panel: Panel,
    cores: u32,
    core_gflops: f64,
) -> [f64; 6] {
    let study = ScalingStudy::new(FabricKind::Tibidabo);
    let w = slot_workload(panel, core_gflops, cfg.iterations);
    let out = study.execute_planned(&w, cores, plan, false);
    [
        out.time.as_secs_f64(),
        out.stats.retries as f64,
        out.stats.timeouts as f64,
        out.stats.skipped_messages as f64,
        out.stats.crashed_ranks as f64,
        f64::from(out.surviving_ranks),
    ]
}

/// Per-panel speedup normalisation over slot times (seconds), in slot
/// order: for each panel, `[speedup, efficiency]` per point — the same
/// arithmetic `ScalingStudy::run` applies, on the same f64 values.
fn normalize_panels(cfg: &Fig3Config, times: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(2 * times.len());
    let mut offset = 0;
    for counts in [&cfg.linpack_cores, &cfg.specfem_cores, &cfg.bigdft_cores] {
        let baseline_cores = counts[0];
        let baseline_time = times[offset];
        for (i, &cores) in counts.iter().enumerate() {
            let speedup = baseline_cores as f64 * baseline_time / times[offset + i];
            out.push(speedup);
            out.push(speedup / cores as f64);
        }
        offset += counts.len();
    }
    out
}

/// Reassembles the canonical healthy-campaign value stream from
/// per-slot times: `[speedup, efficiency]` per point (panels in slot
/// order) then `core_gflops` — the exact stream the pinned
/// `FIG3_QUICK_DIGEST` folds.
pub fn scaling_stream(cfg: &Fig3Config, core_gflops: f64, times: &[f64]) -> Vec<f64> {
    assert_eq!(times.len(), scaling_slots(cfg).len(), "one time per slot");
    let mut out = normalize_panels(cfg, times);
    out.push(core_gflops);
    out
}

/// Reassembles the canonical faulted-campaign value stream from
/// [`measure_faulted_slot`] payloads: per point `[speedup, efficiency,
/// retries, timeouts, skipped, crashed, surviving]`, then `core_gflops`
/// — the exact stream the pinned `FIG3_FAULTED_QUICK_DIGEST` folds.
/// Requires every slot to have completed (a degraded-but-completed
/// point is complete; only an outright task death is not).
pub fn faulted_stream(cfg: &Fig3Config, core_gflops: f64, slots: &[[f64; 6]]) -> Vec<f64> {
    assert_eq!(slots.len(), scaling_slots(cfg).len(), "one payload per slot");
    let times: Vec<f64> = slots.iter().map(|s| s[0]).collect();
    let norms = normalize_panels(cfg, &times);
    let mut out = Vec::with_capacity(7 * slots.len() + 1);
    for (i, payload) in slots.iter().enumerate() {
        out.push(norms[2 * i]);
        out.push(norms[2 * i + 1]);
        out.extend_from_slice(&payload[1..]);
    }
    out.push(core_gflops);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tegra2_rate_is_plausible() {
        let g = tegra2_effective_gflops();
        // The Tegra2's VFP peaks at 1 GFLOPS/core; real codes achieve a
        // fraction of that.
        assert!((0.05..0.9).contains(&g), "effective rate {g} GFLOPS");
    }

    #[test]
    fn figure3_shapes() {
        let r = run(&Fig3Config::quick());
        // Fig 3a: LINPACK acceptable at ~104 cores.
        let lp = r.linpack.at(104).expect("ran").efficiency;
        assert!((0.55..0.97).contains(&lp), "LINPACK eff {lp}");
        // Fig 3b: SPECFEM excellent at 192 (vs 4-core base).
        let sf = r.specfem.at(192).expect("ran").efficiency;
        assert!(sf > 0.8, "SPECFEM eff {sf}");
        assert_eq!(r.specfem.baseline_cores, 4);
        // Fig 3c: BigDFT collapses by 36.
        let bd = r.bigdft.at(36).expect("ran").efficiency;
        assert!(bd < 0.6, "BigDFT eff {bd}");
        // Ordering: SPECFEM scales best, BigDFT worst.
        assert!(sf > lp && lp > bd);
    }

    #[test]
    fn workload_carries_measured_rate() {
        let w = workload(Panel::BigDft, 2);
        assert!((w.core_gflops - tegra2_effective_gflops()).abs() < 1e-12);
        assert_eq!(w.iterations, 2);
    }

    #[test]
    fn zero_fault_rerun_matches_plain_figure3() {
        let cfg = Fig3Config::quick();
        let plain = run(&cfg);
        let faulted = run_faulted(&cfg, FaultConfig::none());
        for (s, r) in [
            (&plain.linpack, &faulted.linpack),
            (&plain.specfem, &faulted.specfem),
            (&plain.bigdft, &faulted.bigdft),
        ] {
            assert!(r.failed.is_empty());
            for (a, b) in s.points.iter().zip(&r.points) {
                assert_eq!(a, &b.point, "zero-fault plan must install nothing");
            }
        }
        assert_eq!(faulted.total_stats(), mb_mpi::ResilienceStats::default());
    }

    #[test]
    fn slot_decomposition_is_bit_identical_to_monolithic_run() {
        let cfg = Fig3Config::quick();
        let r = run(&cfg);
        let rate = tegra2_effective_gflops();
        let times: Vec<f64> = scaling_slots(&cfg)
            .into_iter()
            .map(|(panel, cores)| measure_scaling_slot(&cfg, panel, cores, rate))
            .collect();
        let stream = scaling_stream(&cfg, rate, &times);
        let expect: Vec<f64> = [&r.linpack, &r.specfem, &r.bigdft]
            .into_iter()
            .flat_map(|s| s.points.iter().flat_map(|p| [p.speedup, p.efficiency]))
            .chain([r.core_gflops])
            .collect();
        assert_eq!(stream.len(), expect.len());
        for (i, (a, b)) in stream.iter().zip(&expect).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "stream value {i}: {a} vs {b}");
        }
    }

    #[test]
    fn quick_grid_points_are_a_pure_subset_of_the_paper_grid() {
        // The quick⊂paper consistency property: a slot payload is a
        // pure function of its point `(panel, cores)` plus the
        // iteration knob — never of the surrounding grid. Align the
        // iteration counts and every grid point shared between the
        // quick and paper configs must measure bit-identically.
        let paper = Fig3Config::paper();
        let quick_at_paper_iters = Fig3Config {
            iterations: paper.iterations,
            ..Fig3Config::quick()
        };
        let rate = tegra2_effective_gflops();
        let paper_slots = scaling_slots(&paper);
        let mut shared = 0usize;
        for (panel, cores) in scaling_slots(&quick_at_paper_iters) {
            if !paper_slots.contains(&(panel, cores)) {
                continue; // e.g. specfem@48c exists only in the quick grid
            }
            shared += 1;
            let quick_payload =
                measure_scaling_slot(&quick_at_paper_iters, panel, cores, rate);
            let paper_payload = measure_scaling_slot(&paper, panel, cores, rate);
            assert_eq!(
                quick_payload.to_bits(),
                paper_payload.to_bits(),
                "{} diverged between the quick and paper grids",
                slot_label(panel, cores)
            );
            let faulted_quick = measure_faulted_slot(
                &quick_at_paper_iters,
                FaultConfig::light(),
                panel,
                cores,
                rate,
            );
            let faulted_paper =
                measure_faulted_slot(&paper, FaultConfig::light(), panel, cores, rate);
            for (a, b) in faulted_quick.iter().zip(&faulted_paper) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "faulted {} diverged between the quick and paper grids",
                    slot_label(panel, cores)
                );
            }
        }
        assert!(shared >= 6, "only {shared} shared grid points — grids drifted apart");
    }

    #[test]
    fn calibration_is_cached_across_calls() {
        let a = tegra2_effective_gflops();
        let b = tegra2_effective_gflops();
        assert_eq!(a.to_bits(), b.to_bits());
        #[cfg(feature = "validate")]
        assert_eq!(
            tegra2_calibration_count(),
            1,
            "the SPECFEM calibration must run exactly once per process"
        );
    }

    #[test]
    fn faulted_slot_decomposition_is_bit_identical() {
        let cfg = Fig3Config::quick();
        let r = run_faulted(&cfg, FaultConfig::light());
        let rate = tegra2_effective_gflops();
        let slots: Vec<[f64; 6]> = scaling_slots(&cfg)
            .into_iter()
            .map(|(panel, cores)| {
                measure_faulted_slot(&cfg, FaultConfig::light(), panel, cores, rate)
            })
            .collect();
        let stream = faulted_stream(&cfg, rate, &slots);
        let expect: Vec<f64> = [&r.linpack, &r.specfem, &r.bigdft]
            .into_iter()
            .flat_map(|s| {
                s.points.iter().flat_map(|p| {
                    [
                        p.point.speedup,
                        p.point.efficiency,
                        p.stats.retries as f64,
                        p.stats.timeouts as f64,
                        p.stats.skipped_messages as f64,
                        p.stats.crashed_ranks as f64,
                        f64::from(p.surviving_ranks),
                    ]
                })
            })
            .chain([r.core_gflops])
            .collect();
        assert_eq!(stream.len(), expect.len());
        for (i, (a, b)) in stream.iter().zip(&expect).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "stream value {i}: {a} vs {b}");
        }
    }

    #[test]
    fn faulted_energy_charges_the_retry_surcharge() {
        let cfg = Fig3Config::quick();
        let faulted = run_faulted(&cfg, FaultConfig::light());
        let stats = faulted.total_stats();
        assert!(stats.retries > 0, "quick light run must retry");
        // total_energy = Σ nodes × nameplate × makespan (the time-only
        // accounting we had before) + the per-event surcharge.
        let node = PowerModel::tegra2_node().nameplate();
        let time_only: f64 = [&faulted.linpack, &faulted.specfem, &faulted.bigdft]
            .into_iter()
            .flat_map(|s| s.points.iter())
            .map(|p| node.watts() * f64::from(p.node_count()) * p.point.time.as_secs_f64())
            .sum();
        let surcharge = RetransmissionModel::tibidabo_gbe()
            .surcharge(stats.retries, stats.timeouts)
            .joules();
        assert!(surcharge > 0.0);
        let total = faulted.total_energy().joules();
        assert!(
            (total - time_only - surcharge).abs() < 1e-6 * total,
            "total {total} J != makespan {time_only} J + surcharge {surcharge} J"
        );
    }

    #[test]
    fn faulted_figure3_completes_degraded() {
        let r = run_faulted(&Fig3Config::quick(), FaultConfig::light());
        for s in [&r.linpack, &r.specfem, &r.bigdft] {
            assert!(s.failed.is_empty(), "faults degrade, never kill: {s:?}");
            assert!(!s.points.is_empty());
        }
        let eff = r.mean_efficiency();
        assert!(eff > 0.0 && eff <= 1.5, "mean efficiency {eff}");
        let total = r.total_stats();
        assert!(total.retries > 0, "light faults should force retries");
        assert!(total.crashed_ranks > 0, "light faults should crash a rank");
    }
}
