//! CSV export of the experiment reports, so the figures can be re-plotted
//! with external tooling (R/ggplot2, as the paper's own plots were).
//!
//! The writers are deliberately dependency-free: every report knows its
//! own flat schema, values are numeric or simple identifiers, and fields
//! containing separators are quoted defensively.

use crate::fig5::Fig5Report;
use crate::fig6::Fig6Report;
use crate::fig7::Fig7Report;
use crate::table2::Table2Report;
use mb_cluster::scaling::ScalingSeries;

/// Quotes a CSV field if it contains a separator, quote or newline.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Table II as CSV: `benchmark,unit,snowball,xeon,ratio,energy_ratio`.
pub fn table2_csv(report: &Table2Report) -> String {
    let mut out = String::from("benchmark,unit,snowball,xeon,ratio,energy_ratio\n");
    for r in &report.rows {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            field(&r.benchmark),
            field(&r.unit),
            r.snowball,
            r.xeon,
            r.ratio,
            r.energy_ratio
        ));
    }
    out
}

/// A scaling series as CSV: `application,cores,seconds,speedup,efficiency`.
pub fn scaling_csv(series: &[&ScalingSeries]) -> String {
    let mut out = String::from("application,cores,seconds,speedup,efficiency\n");
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                field(&s.name),
                p.cores,
                p.time.as_secs_f64(),
                p.speedup,
                p.efficiency
            ));
        }
    }
    out
}

/// Figure 5 as CSV: `seq,array_bytes,bandwidth_gbps,degraded`.
pub fn fig5_csv(report: &Fig5Report) -> String {
    let mut out = String::from("seq,array_bytes,bandwidth_gbps,degraded\n");
    for s in &report.samples {
        out.push_str(&format!(
            "{},{},{},{}\n",
            s.seq, s.array_bytes, s.bandwidth_gbps, s.degraded
        ));
    }
    out
}

/// Figure 6 as CSV: `machine,elem_bits,unrolled,bandwidth_gbps`.
pub fn fig6_csv(report: &Fig6Report) -> String {
    let mut out = String::from("machine,elem_bits,unrolled,bandwidth_gbps\n");
    for panel in [&report.xeon, &report.snowball] {
        for c in &panel.cells {
            out.push_str(&format!(
                "{},{},{},{}\n",
                field(&panel.machine),
                c.elem_bits,
                c.unrolled,
                c.bandwidth_gbps
            ));
        }
    }
    out
}

/// Figure 7 as CSV: `machine,unroll,cycles,cache_accesses`.
pub fn fig7_csv(report: &Fig7Report) -> String {
    let mut out = String::from("machine,unroll,cycles,cache_accesses\n");
    for panel in [&report.nehalem, &report.tegra2] {
        for p in &panel.points {
            out.push_str(&format!(
                "{},{},{},{}\n",
                field(&panel.machine),
                p.unroll,
                p.cycles,
                p.cache_accesses
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::{Table2Config, Table2Report, Table2Row};

    fn fake_table2() -> Table2Report {
        Table2Report {
            rows: vec![Table2Row {
                benchmark: "LINPACK, tuned".to_string(), // comma forces quoting
                snowball: 620.0,
                xeon: 24000.0,
                unit: "MFLOPS".to_string(),
                higher_is_better: true,
                ratio: 38.7,
                energy_ratio: 1.0,
            }],
            config: Table2Config::quick(),
        }
    }

    #[test]
    fn table2_csv_schema_and_quoting() {
        let csv = table2_csv(&fake_table2());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "benchmark,unit,snowball,xeon,ratio,energy_ratio");
        assert!(lines[1].starts_with("\"LINPACK, tuned\",MFLOPS,620,24000,"));
    }

    #[test]
    fn field_quoting_rules() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fig5_csv_row_count() {
        let r = crate::fig5::run(&crate::fig5::Fig5Config::quick());
        let csv = fig5_csv(&r);
        assert_eq!(csv.lines().count(), r.samples.len() + 1);
        assert!(csv.contains("degraded"));
    }

    #[test]
    fn fig6_and_fig7_csv_parse_back() {
        let f6 = crate::fig6::run();
        let csv = fig6_csv(&f6);
        assert_eq!(csv.lines().count(), 13); // header + 2 machines × 6 cells
        let f7 = crate::fig7::run(&crate::fig7::Fig7Config::quick());
        let csv = fig7_csv(&f7);
        assert_eq!(csv.lines().count(), 25); // header + 2 × 12 unrolls
        // Every data row has exactly 4 fields (no stray separators).
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 4, "{line}");
        }
    }

    #[test]
    fn scaling_csv_includes_all_series() {
        use mb_cluster::scaling::{FabricKind, ScalingStudy};
        use mb_cluster::workload::Workload;
        let study = ScalingStudy::new(FabricKind::Tibidabo);
        let s = study.run(&Workload::bigdft_tibidabo().with_iterations(1), &[2, 8]);
        let csv = scaling_csv(&[&s]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("BigDFT"));
    }
}
