//! Platform presets: the machines of the paper, assembled from the
//! workspace's substrates (Figure 2, §II.B, §III.A).

use mb_cpu::arch::CoreModel;
use mb_cpu::exec_model::ModelExec;
use mb_cpu::ops::Precision;
use mb_energy::PowerModel;
use mb_mem::hierarchy::HierarchyConfig;
use mb_mem::tlb::TlbConfig;
use mb_mem::topology::Topology;
use serde::{Deserialize, Serialize};

/// A complete single-node platform: cores, memory system, power model
/// and topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// Display name.
    pub name: String,
    /// Core micro-architecture model.
    pub core: CoreModel,
    /// Number of cores used for benchmarking (the paper: 2 on the
    /// Snowball, 4 on the Xeon with hyper-threading disabled).
    pub cores: u32,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// TLB miss penalty in cycles.
    pub tlb_miss_penalty_cycles: u64,
    /// Nameplate power of the whole platform.
    pub power: PowerModel,
}

impl Platform {
    /// The Snowball board: dual Cortex-A9 @ 1 GHz, 2.5 W budget.
    pub fn snowball() -> Self {
        Platform {
            name: "Snowball (ST-Ericsson A9500)".to_string(),
            core: CoreModel::cortex_a9_snowball(),
            cores: 2,
            hierarchy: HierarchyConfig::snowball_a9500(),
            tlb: TlbConfig::new(32, 4096),
            tlb_miss_penalty_cycles: 40,
            power: PowerModel::snowball(),
        }
    }

    /// The Xeon X5550 host: 4 Nehalem cores @ 2.66 GHz (hyper-threading
    /// disabled, §III.C), 95 W TDP.
    pub fn xeon_x5550() -> Self {
        Platform {
            name: "Intel Xeon X5550".to_string(),
            core: CoreModel::nehalem(),
            cores: 4,
            hierarchy: HierarchyConfig::xeon_x5550(),
            tlb: TlbConfig::new(64, 4096),
            tlb_miss_penalty_cycles: 30,
            power: PowerModel::xeon_x5550(),
        }
    }

    /// One Tibidabo node: dual Cortex-A9 (Tegra2, no NEON) @ 1 GHz.
    pub fn tegra2_node() -> Self {
        Platform {
            name: "Tibidabo node (NVIDIA Tegra2)".to_string(),
            core: CoreModel::cortex_a9_tegra2(),
            cores: 2,
            hierarchy: HierarchyConfig::tegra2(),
            tlb: TlbConfig::new(32, 4096),
            tlb_miss_penalty_cycles: 40,
            power: PowerModel::tegra2_node(),
        }
    }

    /// The prospective Exynos 5 node of §VI.A.
    pub fn exynos5_node() -> Self {
        Platform {
            name: "Exynos 5 Dual node".to_string(),
            core: CoreModel::cortex_a15_exynos5(),
            cores: 2,
            hierarchy: HierarchyConfig::tegra2(), // same class of hierarchy
            tlb: TlbConfig::new(32, 4096),
            tlb_miss_penalty_cycles: 35,
            power: PowerModel::exynos5_node(),
        }
    }

    /// A fresh single-core execution model for this platform, with the
    /// given cache-sampling rate (1 = exact).
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is zero.
    pub fn exec(&self, sample_rate: u32) -> ModelExec {
        ModelExec::new(
            self.core.clone(),
            self.hierarchy.clone(),
            self.tlb,
            self.tlb_miss_penalty_cycles,
            sample_rate,
        )
    }

    /// Peak double-precision GFLOPS across all cores.
    pub fn peak_gflops_f64(&self) -> f64 {
        self.core.peak_gflops(Precision::F64) * self.cores as f64
    }

    /// Peak single-precision GFLOPS across all cores.
    pub fn peak_gflops_f32(&self) -> f64 {
        self.core.peak_gflops(Precision::F32) * self.cores as f64
    }

    /// The hwloc-style topology (Figure 2) for platforms the paper
    /// depicts; `None` for the prospective ones.
    pub fn topology(&self) -> Option<Topology> {
        if self.name.contains("Snowball") {
            Some(Topology::a9500())
        } else if self.name.contains("Xeon") {
            Some(Topology::xeon_x5550())
        } else if self.name.contains("Tegra2") {
            Some(Topology::tegra2())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_core_counts() {
        assert_eq!(Platform::snowball().cores, 2);
        assert_eq!(Platform::xeon_x5550().cores, 4);
    }

    #[test]
    fn peak_asymmetry() {
        let snow = Platform::snowball();
        let xeon = Platform::xeon_x5550();
        // Xeon peak DP = 4 × 10.64 = 42.6 GFLOPS; Snowball = 2 GFLOPS.
        assert!((xeon.peak_gflops_f64() - 42.56).abs() < 0.1);
        assert!((snow.peak_gflops_f64() - 2.0).abs() < 0.01);
    }

    #[test]
    fn topologies_match_figure2() {
        let snow = Platform::snowball().topology().expect("depicted");
        assert_eq!(snow.num_cores(), 2);
        let xeon = Platform::xeon_x5550().topology().expect("depicted");
        assert_eq!(xeon.num_cores(), 4);
        assert!(Platform::exynos5_node().topology().is_none());
    }

    #[test]
    fn exec_builds_and_costs() {
        use mb_cpu::ops::{Exec, FlopKind};
        let mut e = Platform::snowball().exec(1);
        e.flop(FlopKind::Add, Precision::F64, 1);
        assert!(e.finish().cycles.get() >= 1);
    }

    #[test]
    fn power_models_wired() {
        assert_eq!(Platform::snowball().power.nameplate().watts(), 2.5);
        assert_eq!(Platform::xeon_x5550().power.nameplate().watts(), 95.0);
    }
}
