//! # montblanc — Performance Analysis of HPC Applications on Low-Power Embedded Platforms
//!
//! A from-scratch Rust reproduction of **Stanisic et al., DATE 2013**
//! (the Mont-Blanc project's early performance study). The paper measured
//! real hardware — Snowball A9500 boards, a Xeon X5550, the Tibidabo
//! Tegra2 cluster; this crate drives the workspace's *simulated*
//! equivalents through the paper's exact experiments:
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`top500`] | Figure 1 — TOP500 exponential growth + exaflop projection |
//! | [`apps`] | Table I — the eleven selected Mont-Blanc applications |
//! | [`platform`] | Figure 2 — the platform presets and their topologies |
//! | [`table2`] | Table II — single-node performance & energy comparison |
//! | [`fig3`] | Figure 3 — strong scaling of LINPACK / SPECFEM3D / BigDFT on Tibidabo |
//! | [`fig4`] | Figure 4 — BigDFT's delayed `all_to_all_v` collectives |
//! | [`fig5`] | Figure 5 — the real-time-scheduling bandwidth anomaly |
//! | [`fig6`] | Figure 6 — element size × loop unrolling on both machines |
//! | [`fig7`] | Figure 7 — magicfilter auto-tuning (cycles & cache accesses vs unroll) |
//!
//! Every experiment type has a `quick()` configuration (seconds, used in
//! tests) and a `paper()` configuration (the full parameter grid, used by
//! the `mb-bench` binaries).
//!
//! # Examples
//!
//! ```
//! use montblanc::platform::Platform;
//!
//! let snowball = Platform::snowball();
//! let xeon = Platform::xeon_x5550();
//! // The paper's headline peak-performance asymmetry.
//! assert!(xeon.peak_gflops_f64() > 20.0 * snowball.peak_gflops_f64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod apps;
pub mod csv;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod platform;
pub mod report;
pub mod sec5a;
pub mod sec6;
pub mod table2;
pub mod top500;

pub use platform::Platform;
