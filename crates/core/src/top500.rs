//! Figure 1 — the TOP500 performance-development plot and the paper's
//! exascale arithmetic.
//!
//! The figure shows the exponential growth of the #1 system, the #500
//! system and the list total since 1993, and the paper's introduction
//! projects the exaflop barrier around 2018 while noting that a 20 MW
//! budget demands 50 GFLOPS/W. We embed the historical June-list data
//! (Rmax, in GFLOPS) and refit the trend with
//! [`mb_simcore::stats::LinearFit`].

use mb_simcore::stats::LinearFit;
use serde::{Deserialize, Serialize};

/// One June TOP500 list snapshot (Rmax in GFLOPS).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Top500Entry {
    /// List year.
    pub year: u32,
    /// Rmax of the #1 system.
    pub first_gflops: f64,
    /// Rmax of the #500 system.
    pub last_gflops: f64,
    /// Sum over the whole list.
    pub sum_gflops: f64,
}

/// The June TOP500 history from 1993 to 2012 (the span Figure 1 plots).
/// Values are the published Rmax numbers, in GFLOPS.
pub fn history() -> Vec<Top500Entry> {
    // (year, #1, #500, sum) — June lists.
    let rows: [(u32, f64, f64, f64); 20] = [
        (1993, 59.7, 0.42, 1_170.0),
        (1994, 143.4, 0.47, 1_520.0),
        (1995, 170.0, 0.94, 2_950.0),
        (1996, 220.4, 1.3, 4_500.0),
        (1997, 1_068.0, 2.0, 7_980.0),
        (1998, 1_338.0, 3.4, 13_400.0),
        (1999, 2_121.0, 9.7, 26_500.0),
        (2000, 2_379.0, 18.2, 54_800.0),
        (2001, 7_226.0, 28.0, 89_400.0),
        (2002, 35_860.0, 48.0, 193_000.0),
        (2003, 35_860.0, 98.0, 375_000.0),
        (2004, 35_860.0, 250.0, 622_000.0),
        (2005, 136_800.0, 464.0, 1_100_000.0),
        (2006, 280_600.0, 996.0, 1_640_000.0),
        (2007, 280_600.0, 2_026.0, 2_950_000.0),
        (2008, 1_026_000.0, 4_500.0, 6_970_000.0),
        (2009, 1_105_000.0, 9_600.0, 10_500_000.0),
        (2010, 1_759_000.0, 20_100.0, 16_900_000.0),
        (2011, 8_162_000.0, 31_100.0, 32_400_000.0),
        (2012, 16_320_000.0, 50_900.0, 74_200_000.0),
    ];
    rows.iter()
        .map(|&(year, first, last, sum)| Top500Entry {
            year,
            first_gflops: first,
            last_gflops: last,
            sum_gflops: sum,
        })
        .collect()
}

/// Which Figure 1 series to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Series {
    /// The #1 system.
    First,
    /// The #500 system.
    Last,
    /// The list total.
    Sum,
}

/// The Figure 1 analysis: a log-linear fit of one series and its
/// exaflop-crossing projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendReport {
    /// Which series was fitted.
    pub series: Series,
    /// The log-space fit (`ln(gflops) = slope·year + intercept`).
    pub fit: LinearFit,
    /// Average performance doubling time implied by the fit, in years.
    pub doubling_time_years: f64,
    /// The year the fitted trend reaches 1 exaflop (1e9 GFLOPS).
    pub exaflop_year: f64,
}

/// Fits a TOP500 series and projects the exaflop crossing.
///
/// # Panics
///
/// Panics if `data` has fewer than two points.
pub fn fit_trend(data: &[Top500Entry], series: Series) -> TrendReport {
    let points: Vec<(f64, f64)> = data
        .iter()
        .map(|e| {
            let y = match series {
                Series::First => e.first_gflops,
                Series::Last => e.last_gflops,
                Series::Sum => e.sum_gflops,
            };
            (e.year as f64, y)
        })
        .collect();
    let fit = LinearFit::fit_log(&points);
    TrendReport {
        series,
        fit,
        doubling_time_years: (2.0f64).ln() / fit.slope,
        exaflop_year: fit.solve_for_exp(1e9),
    }
}

/// The introduction's required-efficiency claim: an exaflop within the
/// 20 MW envelope needs 50 GFLOPS/W — a factor-of-25 improvement over
/// the 2012 state of the art (~2 GFLOPS/W).
pub fn required_improvement_factor() -> f64 {
    let needed = mb_energy::required_gflops_per_watt(1e9, mb_energy::Power::from_watts(20e6));
    needed / 2.0
}

/// The three Figure 1 series in campaign-slot order.
pub fn all_series() -> [Series; 3] {
    [Series::First, Series::Last, Series::Sum]
}

/// Short slot label of a series.
pub fn series_label(series: Series) -> &'static str {
    match series {
        Series::First => "first",
        Series::Last => "last",
        Series::Sum => "sum",
    }
}

/// Flattens a trend report into its digest stream:
/// `[slope, intercept, r2, doubling_time_years, exaflop_year]`.
pub fn trend_stream(report: &TrendReport) -> Vec<f64> {
    vec![
        report.fit.slope,
        report.fit.intercept,
        report.fit.r2,
        report.doubling_time_years,
        report.exaflop_year,
    ]
}

/// Measures one campaign slot: fits the given series over the full
/// history and returns its [`trend_stream`].
pub fn measure_series(series: Series) -> Vec<f64> {
    trend_stream(&fit_trend(&history(), series))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_is_monotone_in_year() {
        let h = history();
        assert_eq!(h.len(), 20);
        assert!(h.windows(2).all(|w| w[0].year < w[1].year));
        // #1 ≥ #500 always; sum ≥ #1 always.
        assert!(h.iter().all(|e| e.first_gflops >= e.last_gflops));
        assert!(h.iter().all(|e| e.sum_gflops >= e.first_gflops));
    }

    #[test]
    fn growth_is_exponential() {
        let r = fit_trend(&history(), Series::Sum);
        assert!(r.fit.r2 > 0.98, "log-linear fit should be tight: {}", r.fit.r2);
        // The list total historically doubles roughly every year.
        assert!(
            (0.8..1.5).contains(&r.doubling_time_years),
            "doubling {} years",
            r.doubling_time_years
        );
    }

    #[test]
    fn exaflop_projection_matches_paper() {
        // "In order to break the exaflops barrier by the projected year
        // of 2018" — the sum-trend crossing should land 2017–2020.
        let r = fit_trend(&history(), Series::Sum);
        assert!(
            (2016.0..2021.0).contains(&r.exaflop_year),
            "projected {}",
            r.exaflop_year
        );
        // The #1-system trend crosses a little later.
        let r1 = fit_trend(&history(), Series::First);
        assert!(
            (2016.0..2023.0).contains(&r1.exaflop_year),
            "#1 projected {}",
            r1.exaflop_year
        );
    }

    #[test]
    fn factor_25_improvement_needed() {
        assert!((required_improvement_factor() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn slot_decomposition_is_bit_identical_to_direct_fits() {
        for series in all_series() {
            let direct = trend_stream(&fit_trend(&history(), series));
            let slot = measure_series(series);
            assert_eq!(slot.len(), 5);
            for (a, b) in slot.iter().zip(&direct) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", series_label(series));
            }
        }
    }
}
