//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Three ablations, all on the simulated Tibidabo fabric:
//!
//! * [`collective_algorithms`] — broadcast and all-reduce algorithm
//!   choice (binomial tree vs pipelined ring) across payload sizes: the
//!   latency/bandwidth crossover that makes HPL's `1ring` broadcast the
//!   right call on commodity Ethernet (§IV / our Fig 3a modelling).
//! * [`switch_upgrade`] — the paper's proposed fix: BigDFT's makespan on
//!   commodity vs upgraded switches across core counts.
//! * [`page_policies`] — §V.A.1's allocator policies: mean bandwidth and
//!   run-to-run spread under contiguous, random and reuse-last frames.

use crate::fig3;
use crate::platform::Platform;
use mb_cluster::scaling::{FabricKind, ScalingStudy};
use mb_kernels::membench::{make_buffer, MembenchConfig};
use mb_mem::pages::{PageAllocator, PagePolicy};
use mb_mpi::comm::{Comm, CommConfig};
use mb_net::builders::tibidabo_fabric;
use mb_simcore::stats::Summary;
use mb_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Result of one collective-algorithm comparison cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveCell {
    /// Payload bytes.
    pub bytes: u64,
    /// Binomial-tree makespan.
    pub tree: SimTime,
    /// Ring makespan.
    pub ring: SimTime,
}

impl CollectiveCell {
    /// Which algorithm wins this cell.
    pub fn ring_wins(&self) -> bool {
        self.ring < self.tree
    }
}

/// Tree-vs-ring comparison for one collective across payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveAblation {
    /// `"bcast"` or `"allreduce"`.
    pub collective: String,
    /// Ranks used.
    pub ranks: u32,
    /// One cell per payload size, ascending.
    pub cells: Vec<CollectiveCell>,
}

impl CollectiveAblation {
    /// The smallest payload at which the ring wins, if any.
    pub fn crossover_bytes(&self) -> Option<u64> {
        self.cells.iter().find(|c| c.ring_wins()).map(|c| c.bytes)
    }
}

/// Compares tree and ring algorithms for broadcast and all-reduce on
/// `ranks` ranks over the commodity fabric.
///
/// # Panics
///
/// Panics if `payloads` is empty or unsorted.
pub fn collective_algorithms(ranks: u32, payloads: &[u64]) -> Vec<CollectiveAblation> {
    assert!(!payloads.is_empty(), "need at least one payload");
    assert!(
        payloads.windows(2).all(|w| w[0] < w[1]),
        "payloads must be ascending"
    );
    let nodes = ranks.div_ceil(2) as usize;
    let fresh = || Comm::new(tibidabo_fabric(nodes), CommConfig::tibidabo(ranks));
    let mut out = Vec::with_capacity(2);
    for which in ["bcast", "allreduce"] {
        let mut cells = Vec::with_capacity(payloads.len());
        for &bytes in payloads {
            let mut tree = fresh();
            let mut ring = fresh();
            match which {
                "bcast" => {
                    tree.bcast(0, bytes);
                    ring.bcast_ring(0, bytes);
                }
                _ => {
                    tree.allreduce(bytes);
                    ring.allreduce_ring(bytes);
                }
            }
            cells.push(CollectiveCell {
                bytes,
                tree: tree.max_clock(),
                ring: ring.max_clock(),
            });
        }
        out.push(CollectiveAblation {
            collective: which.to_string(),
            ranks,
            cells,
        });
    }
    out
}

/// One row of the switch-upgrade ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpgradeRow {
    /// Core count.
    pub cores: u32,
    /// BigDFT makespan on commodity switches.
    pub commodity: SimTime,
    /// BigDFT makespan with 4× bonded GbE uplinks.
    pub bonded: SimTime,
    /// BigDFT makespan on upgraded switches.
    pub upgraded: SimTime,
}

impl UpgradeRow {
    /// Relative improvement from the full upgrade, in `[0, 1)`.
    pub fn improvement(&self) -> f64 {
        1.0 - self.upgraded.as_secs_f64() / self.commodity.as_secs_f64()
    }

    /// Relative improvement from uplink bonding alone.
    pub fn bonding_improvement(&self) -> f64 {
        1.0 - self.bonded.as_secs_f64() / self.commodity.as_secs_f64()
    }
}

/// Runs BigDFT at each core count on the three fabrics: commodity,
/// bonded-uplink (the cheap mitigation) and fully upgraded (§IV's
/// prediction that better switches fix the collectives).
pub fn switch_upgrade(core_counts: &[u32], iterations: u32) -> Vec<UpgradeRow> {
    let w = fig3::workload(fig3::Panel::BigDft, iterations);
    // One sweep task per (core count, fabric) cell; each `execute` is a
    // pure function of its inputs, and rows are reassembled in input
    // order, so the table is bit-identical to a serial run.
    let fabrics = [
        FabricKind::Tibidabo,
        FabricKind::TibidaboBonded(4),
        FabricKind::TibidaboUpgraded,
    ];
    let tasks = core_counts
        .iter()
        .flat_map(|&cores| {
            fabrics
                .iter()
                .map(move |&fabric| (format!("bigdft@{cores}c/{fabric:?}"), (cores, fabric)))
        })
        .collect();
    let cells = mb_simcore::par::sweep_labeled(0, tasks, |_, (cores, fabric)| {
        ScalingStudy::new(fabric).execute(&w, cores, false).0
    });
    core_counts
        .iter()
        .enumerate()
        .map(|(i, &cores)| UpgradeRow {
            cores,
            commodity: cells[3 * i],
            bonded: cells[3 * i + 1],
            upgraded: cells[3 * i + 2],
        })
        .collect()
}

/// One row of the page-policy ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRow {
    /// The allocator policy.
    pub policy: PagePolicy,
    /// Mean bandwidth over the runs, GB/s.
    pub mean_gbps: f64,
    /// Coefficient of variation across runs.
    pub across_run_cv: f64,
}

/// Measures the 32 KB microbenchmark on the Snowball under each
/// allocation policy, `runs` independent runs each.
///
/// # Panics
///
/// Panics if `runs` is zero.
pub fn page_policies(runs: u32) -> Vec<PolicyRow> {
    assert!(runs > 0, "need at least one run");
    let platform = Platform::snowball();
    let size = 32 * 1024;
    let data = make_buffer(size, 0xAB1);
    let policies = [
        PagePolicy::Contiguous,
        PagePolicy::Random,
        PagePolicy::ReuseLast,
    ];
    // The (policy, run) grid is embarrassingly parallel: every run
    // builds its own allocator and executor with an explicit seed.
    let tasks = policies
        .iter()
        .flat_map(|&policy| {
            (0..runs).map(move |run| (format!("{policy:?}/run{run}"), (policy, run)))
        })
        .collect();
    let bandwidths = mb_simcore::par::sweep_labeled(0, tasks, |_, (policy, run)| {
        let mut allocator = PageAllocator::new(policy, 4096, 1 << 18, 0xAB2 + run as u64);
        let table = allocator.allocate(size);
        let mut exec = platform.exec(1);
        exec.set_page_table(Some(table));
        exec.set_mlp_hint(1);
        exec.set_prefetch_hint(0.2);
        let mb = MembenchConfig {
            sweeps: 6,
            ..MembenchConfig::figure5(size)
        };
        let (accesses, _) = mb_kernels::membench::run(&mb, &data, &mut exec);
        let report = exec.finish();
        accesses as f64 * 4.0 / report.time.as_secs_f64() / 1e9
    });
    policies
        .iter()
        .enumerate()
        .map(|(i, &policy)| {
            let means = &bandwidths[i * runs as usize..(i + 1) * runs as usize];
            let s = Summary::from_samples(means.iter().copied());
            PolicyRow {
                policy,
                mean_gbps: s.mean(),
                across_run_cv: s.cv(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_cross_over() {
        let ablations = collective_algorithms(16, &[64, 64 * 1024, 4 << 20]);
        for a in &ablations {
            // Tree wins the latency-bound end…
            assert!(
                !a.cells[0].ring_wins(),
                "{}: tree should win at 64 B",
                a.collective
            );
            // …ring wins the bandwidth-bound end.
            assert!(
                a.cells.last().expect("cells").ring_wins(),
                "{}: ring should win at 4 MB",
                a.collective
            );
            assert!(a.crossover_bytes().is_some());
        }
    }

    #[test]
    fn switch_upgrade_always_helps_bigdft() {
        let rows = switch_upgrade(&[16, 36], 2);
        for r in &rows {
            assert!(
                r.improvement() > 0.0,
                "{} cores: upgrade must help",
                r.cores
            );
            // The full upgrade dominates mere bonding.
            assert!(
                r.upgraded <= r.bonded,
                "{} cores: upgrade should beat bonding",
                r.cores
            );
        }
        // And it helps more (or at least comparably) at scale.
        assert!(rows[1].improvement() > 0.02);
        // Bonding alone is near-neutral: the constraint is switch
        // behaviour, not uplink width — so the full upgrade beats it.
        assert!(rows[1].improvement() > rows[1].bonding_improvement());
        assert!(rows[1].bonding_improvement().abs() < 0.10);
    }

    #[test]
    fn page_policy_ordering() {
        let rows = page_policies(8);
        let get = |p: PagePolicy| {
            rows.iter()
                .find(|r| r.policy == p)
                .expect("row present")
        };
        let contiguous = get(PagePolicy::Contiguous);
        let random = get(PagePolicy::Random);
        // Contiguous frames: fastest and perfectly reproducible.
        assert!(contiguous.mean_gbps >= random.mean_gbps);
        assert!(contiguous.across_run_cv < 1e-9);
        // Random frames: visible run-to-run spread (the §V.A.1 story).
        assert!(random.across_run_cv > 0.01, "cv {}", random.across_run_cv);
    }
}
