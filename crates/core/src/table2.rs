//! Table II — single-node comparison of the Snowball and the Xeon X5550.
//!
//! The paper runs LINPACK, CoreMark, StockFish, SPECFEM3D and BigDFT on
//! both machines (2 Snowball cores vs 4 Xeon cores, hyper-threading off)
//! and reports a performance ratio plus an energy ratio assuming 2.5 W vs
//! 95 W (§III.C). Here the same five workloads — the real Rust kernels of
//! `mb-kernels` — are costed on both machine models.
//!
//! Multi-core scaling uses a fixed 95 % parallel efficiency for every
//! benchmark on both machines (the paper's instances are all
//! embarrassingly parallel at node scale).

use crate::platform::Platform;
use mb_cpu::exec_model::ModelExec;
use mb_energy::energy_ratio;
use mb_kernels::chess;
use mb_kernels::coremark::CoreMark;
use mb_kernels::linpack::Linpack;
use mb_kernels::magicfilter::{Grid3, MagicfilterWorkspace};
use mb_kernels::specfem::{Specfem, SpecfemConfig};
use serde::{Deserialize, Serialize};

/// Parallel efficiency assumed when scaling single-core model times to
/// the node's core count.
const NODE_PARALLEL_EFFICIENCY: f64 = 0.95;

/// Configuration of the Table II experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Config {
    /// LINPACK matrix order.
    pub linpack_n: usize,
    /// CoreMark iterations.
    pub coremark_iterations: u32,
    /// Chess search depth for the StockFish-style bench.
    pub chess_depth: u32,
    /// SPECFEM time steps.
    pub specfem_steps: u32,
    /// Magicfilter grid edge (cubic grid).
    pub magicfilter_edge: usize,
    /// Magicfilter applications per run (BigDFT applies it per SCF
    /// iteration).
    pub magicfilter_iterations: u32,
    /// Cache-simulation window-sampling rate (1 = exact).
    pub sample_rate: u32,
}

impl Table2Config {
    /// A fast configuration for tests (runs in roughly a second).
    pub fn quick() -> Self {
        Table2Config {
            linpack_n: 96,
            coremark_iterations: 6,
            chess_depth: 3,
            specfem_steps: 60,
            magicfilter_edge: 16,
            magicfilter_iterations: 2,
            sample_rate: 2,
        }
    }

    /// The full configuration used by the `table2_single_node` bench
    /// binary.
    pub fn paper() -> Self {
        Table2Config {
            linpack_n: 256,
            coremark_iterations: 30,
            chess_depth: 4,
            specfem_steps: 400,
            // Per-process portion of the decomposed grid: small enough
            // that both platforms work mostly in-cache, as BigDFT's
            // blocked convolutions do.
            magicfilter_edge: 20,
            magicfilter_iterations: 4,
            sample_rate: 4,
        }
    }
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Metric value on the Snowball (node total).
    pub snowball: f64,
    /// Metric value on the Xeon (node total).
    pub xeon: f64,
    /// Metric unit.
    pub unit: String,
    /// Whether larger metric values are better (rates) or worse (times).
    pub higher_is_better: bool,
    /// Performance ratio, Xeon-favouring (the paper's *Ratio* column).
    pub ratio: f64,
    /// Energy ratio (Snowball energy / Xeon energy; the paper's *Energy
    /// Ratio* column — below 1 means the ARM platform is cheaper).
    pub energy_ratio: f64,
}

/// The full Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Report {
    /// Rows in the paper's order.
    pub rows: Vec<Table2Row>,
    /// The configuration used.
    pub config: Table2Config,
}

impl Table2Report {
    /// The row for a given benchmark name.
    pub fn row(&self, benchmark: &str) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.benchmark == benchmark)
    }

    /// Renders the table as fixed-width text in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>14} {:>14} {:>8} {:>13}\n",
            "Benchmark", "Snowball", "Xeon", "Ratio", "Energy Ratio"
        ));
        out.push_str(&"-".repeat(76));
        out.push('\n');
        fn sig(v: f64) -> String {
            if v >= 100.0 {
                format!("{v:.1}")
            } else if v >= 1.0 {
                format!("{v:.2}")
            } else if v >= 0.001 {
                format!("{v:.4}")
            } else {
                format!("{v:.3e}")
            }
        }
        for r in &self.rows {
            out.push_str(&format!(
                "{:<22} {:>14} {:>14} {:>8.1} {:>13.2}\n",
                format!("{} ({})", r.benchmark, r.unit),
                sig(r.snowball),
                sig(r.xeon),
                r.ratio,
                r.energy_ratio
            ));
        }
        out
    }
}

/// Seconds of a modelled single-core run scaled to the whole node.
fn node_seconds(exec: &mut ModelExec, platform: &Platform) -> f64 {
    let report = exec.finish();
    report.time.as_secs_f64() / (platform.cores as f64 * NODE_PARALLEL_EFFICIENCY)
}

/// Prefetch predictability assumed for the streaming numeric kernels
/// (LINPACK's daxpy rows, SPECFEM's element sweeps, the magicfilter's
/// row-sequential taps); the branchy integer codes get none.
const STREAMING_PREFETCH: f64 = 0.8;

fn run_linpack(cfg: &Table2Config, platform: &Platform) -> f64 {
    let mut exec = platform.exec(cfg.sample_rate);
    exec.set_prefetch_hint(STREAMING_PREFETCH);
    exec.set_mlp_hint(4);
    let mut lp = Linpack::new(cfg.linpack_n, 42);
    lp.factorize(&mut exec);
    let _x = lp.solve(&mut exec);
    let secs = node_seconds(&mut exec, platform);
    // MFLOPS by the benchmark's nominal count, as LINPACK reports.
    Linpack::nominal_flops(cfg.linpack_n) as f64 / secs / 1e6
}

fn run_coremark(cfg: &Table2Config, platform: &Platform) -> f64 {
    let mut exec = platform.exec(cfg.sample_rate);
    let cm = CoreMark {
        iterations: cfg.coremark_iterations,
        ..CoreMark::table2()
    };
    let _crc = cm.run(&mut exec);
    let secs = node_seconds(&mut exec, platform);
    cm.operations() as f64 / secs
}

fn run_stockfish(cfg: &Table2Config, platform: &Platform) -> f64 {
    let mut exec = platform.exec(cfg.sample_rate);
    let nodes = chess::bench(cfg.chess_depth, &mut exec);
    let secs = node_seconds(&mut exec, platform);
    nodes as f64 / secs
}

fn run_specfem(cfg: &Table2Config, platform: &Platform) -> f64 {
    let mut exec = platform.exec(cfg.sample_rate);
    exec.set_prefetch_hint(STREAMING_PREFETCH);
    exec.set_mlp_hint(4);
    let mut sim = Specfem::new(SpecfemConfig::table2());
    sim.run(cfg.specfem_steps, &mut exec);
    node_seconds(&mut exec, platform)
}

fn run_bigdft(cfg: &Table2Config, platform: &Platform) -> f64 {
    let mut exec = platform.exec(cfg.sample_rate);
    exec.set_prefetch_hint(STREAMING_PREFETCH);
    exec.set_mlp_hint(4);
    let e = cfg.magicfilter_edge;
    let mut current = Grid3::random(e, e, e, 7);
    // Ping-pong the grid against one reusable workspace: the iterated
    // filter allocates nothing after the first pass.
    let mut ws = MagicfilterWorkspace::new();
    for _ in 0..cfg.magicfilter_iterations {
        ws.apply(&current, 4, &mut exec);
        ws.swap_output(&mut current.data);
    }
    node_seconds(&mut exec, platform)
}

fn run_protein(cfg: &Table2Config, platform: &Platform) -> f64 {
    use mb_kernels::protein::{HpModel, UNGER_MOULT_20};
    let mut exec = platform.exec(cfg.sample_rate);
    let mut model = HpModel::new(UNGER_MOULT_20, 0x5331);
    let sweeps = 40 * cfg.coremark_iterations; // scale with the quick/paper knob
    model.anneal(sweeps, 2.0, 0.995, &mut exec);
    let secs = node_seconds(&mut exec, platform);
    sweeps as f64 / secs
}

fn run_hpl_blocked(cfg: &Table2Config, platform: &Platform) -> f64 {
    use mb_kernels::linpack_blocked::BlockedLu;
    let mut exec = platform.exec(cfg.sample_rate);
    exec.set_prefetch_hint(STREAMING_PREFETCH);
    exec.set_mlp_hint(4);
    let nb = (cfg.linpack_n / 8).max(8);
    let mut lu = BlockedLu::new(cfg.linpack_n, nb, 42);
    lu.factorize(&mut exec);
    let _x = lu.solve(&mut exec);
    let secs = node_seconds(&mut exec, platform);
    Linpack::nominal_flops(cfg.linpack_n) as f64 / secs / 1e6
}

/// One row's recipe: name, unit, direction, and the kernel runner.
type RowSpec = (&'static str, &'static str, bool, fn(&Table2Config, &Platform) -> f64);

/// The paper's five rows, in its order. The LINPACK row runs the
/// blocked HPL-style LU on both machines, as the paper did: "optimized
/// for Intel architecture while the code remains unchanged [...] on the
/// ARM platform".
const PAPER_ROWS: [RowSpec; 5] = [
    ("LINPACK", "MFLOPS", true, run_hpl_blocked),
    ("CoreMark", "ops/s", true, run_coremark),
    ("StockFish", "nodes/s", true, run_stockfish),
    ("SPECFEM3D", "s", false, run_specfem),
    ("BigDFT", "s", false, run_bigdft),
];

/// The two extension rows of [`run_extended`].
const EXTENSION_ROWS: [RowSpec; 2] = [
    ("SMMP-like (protein MC)", "sweeps/s", true, run_protein),
    ("LINPACK (unblocked dgefa)", "MFLOPS", true, run_linpack),
];

/// Measures the given rows on both machines — one sweep task per
/// (benchmark, machine) cell, so a five-row table fans out into ten
/// independent model runs. Every kernel runner builds its own executor,
/// so the cells are independent and the assembled rows (reduced in spec
/// order) are bit-identical to a serial run.
fn measure_rows(cfg: &Table2Config, specs: &[RowSpec]) -> Vec<Table2Row> {
    let snowball = Platform::snowball();
    let xeon = Platform::xeon_x5550();
    let p_snow = snowball.power.nameplate();
    let p_xeon = xeon.power.nameplate();

    let tasks = specs
        .iter()
        .enumerate()
        .flat_map(|(i, &(name, ..))| {
            [
                (format!("{name}/snowball"), (i, false)),
                (format!("{name}/xeon"), (i, true)),
            ]
        })
        .collect();
    let cells = mb_simcore::par::sweep_labeled(0, tasks, |_, (i, is_xeon)| {
        let platform = if is_xeon { &xeon } else { &snowball };
        (specs[i].3)(cfg, platform)
    });

    specs
        .iter()
        .enumerate()
        .map(|(i, &(benchmark, unit, higher_is_better, _))| {
            let s = cells[2 * i];
            let x = cells[2 * i + 1];
            let ratio = if higher_is_better { x / s } else { s / x };
            Table2Row {
                benchmark: benchmark.to_string(),
                snowball: s,
                xeon: x,
                unit: unit.to_string(),
                higher_is_better,
                ratio,
                energy_ratio: energy_ratio(ratio, p_snow, p_xeon),
            }
        })
        .collect()
}

/// Runs the full Table II experiment.
pub fn run(cfg: &Table2Config) -> Table2Report {
    Table2Report {
        rows: measure_rows(cfg, &PAPER_ROWS),
        config: *cfg,
    }
}

/// Runs Table II plus two extension rows beyond the paper: a
/// protein-folding Monte-Carlo kernel (the SMMP/PorFASI paradigm of
/// Table I) and a cache-blocked HPL-style LU (the "optimised for Intel"
/// code path the paper's LINPACK row implies).
pub fn run_extended(cfg: &Table2Config) -> Table2Report {
    let mut report = run(cfg);
    report.rows.extend(measure_rows(cfg, &EXTENSION_ROWS));
    report
}

fn extended_specs() -> Vec<RowSpec> {
    PAPER_ROWS
        .iter()
        .chain(EXTENSION_ROWS.iter())
        .copied()
        .collect()
}

/// Number of campaign cells in the extended table: one per
/// `(row, machine)` pair, rows in [`run_extended`] order, Snowball
/// before Xeon within a row.
pub fn extended_cell_count() -> usize {
    2 * (PAPER_ROWS.len() + EXTENSION_ROWS.len())
}

/// Human-readable label of campaign cell `idx`, e.g. `"CoreMark/xeon"`.
pub fn cell_label(idx: usize) -> String {
    let (name, ..) = extended_specs()[idx / 2];
    let machine = if idx.is_multiple_of(2) { "snowball" } else { "xeon" };
    format!("{name}/{machine}")
}

/// Measures campaign cell `idx` alone — bit-identical to the value the
/// monolithic [`run_extended`] sweep computes for that cell, since
/// every kernel runner builds its own executor.
pub fn measure_cell(cfg: &Table2Config, idx: usize) -> f64 {
    let (.., runner) = extended_specs()[idx / 2];
    let platform = if idx.is_multiple_of(2) {
        Platform::snowball()
    } else {
        Platform::xeon_x5550()
    };
    runner(cfg, &platform)
}

/// Reduces raw cell values (in [`measure_cell`] order) to the digest
/// stream of the extended table: per row `[snowball, xeon, ratio,
/// energy_ratio]`, with the same f64 arithmetic as the monolithic
/// sweep's row assembly.
pub fn extended_stream(cells: &[f64]) -> Vec<f64> {
    let specs = extended_specs();
    assert_eq!(
        cells.len(),
        2 * specs.len(),
        "extended_stream needs one value per cell"
    );
    let p_snow = Platform::snowball().power.nameplate();
    let p_xeon = Platform::xeon_x5550().power.nameplate();
    specs
        .iter()
        .enumerate()
        .flat_map(|(i, &(_, _, higher_is_better, _))| {
            let s = cells[2 * i];
            let x = cells[2 * i + 1];
            let ratio = if higher_is_better { x / s } else { s / x };
            [s, x, ratio, energy_ratio(ratio, p_snow, p_xeon)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Table2Report {
        run(&Table2Config::quick())
    }

    #[test]
    fn xeon_wins_every_benchmark() {
        let r = report();
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert!(row.ratio > 1.0, "{}: ratio {}", row.benchmark, row.ratio);
        }
    }

    #[test]
    fn linpack_gap_is_largest_and_tens_of_x() {
        // The paper's key structure: LINPACK (DP SIMD) shows the largest
        // gap (38.7×); CoreMark (integer) the smallest (7.1×).
        let r = report();
        let linpack = r.row("LINPACK").expect("row").ratio;
        let coremark = r.row("CoreMark").expect("row").ratio;
        assert!(
            linpack > 15.0 && linpack < 90.0,
            "LINPACK ratio {linpack} (paper: 38.7)"
        );
        assert!(
            coremark > 3.0 && coremark < 20.0,
            "CoreMark ratio {coremark} (paper: 7.1)"
        );
        assert!(
            linpack > coremark,
            "DP-SIMD gap must exceed the integer gap"
        );
        for row in &r.rows {
            assert!(
                row.ratio <= linpack + 1e-9,
                "{} ratio {} should not exceed LINPACK's",
                row.benchmark,
                row.ratio
            );
        }
    }

    #[test]
    fn arm_wins_on_energy_for_most_benchmarks() {
        // Paper: LINPACK energy parity; everything else cheaper on ARM.
        let r = report();
        let linpack = r.row("LINPACK").expect("row").energy_ratio;
        assert!(
            (0.4..2.2).contains(&linpack),
            "LINPACK energy ratio {linpack} (paper: 1.0)"
        );
        for name in ["CoreMark", "SPECFEM3D", "StockFish", "BigDFT"] {
            let e = r.row(name).expect("row").energy_ratio;
            assert!(e < 1.0, "{name} energy ratio {e} should favour ARM");
        }
        let coremark = r.row("CoreMark").expect("row").energy_ratio;
        assert!(
            coremark < 0.45,
            "CoreMark energy ratio {coremark} (paper: 0.2)"
        );
    }

    #[test]
    fn snowball_linpack_order_of_magnitude() {
        // Paper: 620 MFLOPS on the Snowball, 24 000 on the Xeon.
        let r = report();
        let row = r.row("LINPACK").expect("row");
        assert!(
            (150.0..2_000.0).contains(&row.snowball),
            "Snowball MFLOPS {}",
            row.snowball
        );
        assert!(
            (6_000.0..60_000.0).contains(&row.xeon),
            "Xeon MFLOPS {}",
            row.xeon
        );
    }

    #[test]
    fn times_positive_and_render_works() {
        let r = report();
        for row in &r.rows {
            assert!(row.snowball > 0.0 && row.xeon > 0.0);
        }
        let text = r.render();
        assert!(text.contains("LINPACK"));
        assert!(text.contains("Energy Ratio"));
        assert_eq!(text.lines().count(), 7);
    }

    #[test]
    fn deterministic() {
        let a = report();
        let b = report();
        assert_eq!(a, b);
    }

    #[test]
    fn cell_decomposition_is_bit_identical_to_monolithic_run() {
        let cfg = Table2Config::quick();
        let r = run_extended(&cfg);
        assert_eq!(extended_cell_count(), 14);
        let cells: Vec<f64> = (0..extended_cell_count())
            .map(|idx| measure_cell(&cfg, idx))
            .collect();
        let stream = extended_stream(&cells);
        let expected: Vec<f64> = r
            .rows
            .iter()
            .flat_map(|row| [row.snowball, row.xeon, row.ratio, row.energy_ratio])
            .collect();
        assert_eq!(stream.len(), expected.len());
        for (i, (a, b)) in stream.iter().zip(&expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "stream value {i} diverged");
        }
        assert_eq!(cell_label(0), "LINPACK/snowball");
        assert_eq!(cell_label(3), "CoreMark/xeon");
        assert_eq!(cell_label(13), "LINPACK (unblocked dgefa)/xeon");
    }

    #[test]
    fn extended_rows_behave() {
        let r = run_extended(&Table2Config::quick());
        assert_eq!(r.rows.len(), 7);
        // The Monte-Carlo kernel is integer work: its gap sits in the
        // CoreMark/StockFish band, far below LINPACK's.
        let mc = r.row("SMMP-like (protein MC)").expect("row").ratio;
        let linpack = r.row("LINPACK").expect("row").ratio;
        assert!(mc > 3.0 && mc < linpack, "MC ratio {mc}");
        // And it favours ARM on energy, like the other integer codes.
        assert!(r.row("SMMP-like (protein MC)").expect("row").energy_ratio < 1.0);
        // Blocking helps both machines: the headline (blocked) row beats
        // the unblocked reference.
        let blocked = r.row("LINPACK").expect("row");
        let plain = r.row("LINPACK (unblocked dgefa)").expect("row");
        assert!(
            blocked.snowball >= plain.snowball * 0.9,
            "blocked {} vs unblocked {} on ARM",
            blocked.snowball,
            plain.snowball
        );
        // At the quick scale the whole matrix fits the Xeon's L2, so
        // blocking buys nothing there — it must merely not cost much.
        // (Its win on cache-exceeding sizes is asserted by
        // `mb_kernels::linpack_blocked`'s miss-count ablation test.)
        assert!(
            blocked.xeon >= plain.xeon * 0.9,
            "blocked {} vs unblocked {} on Xeon",
            blocked.xeon,
            plain.xeon
        );
    }
}
