//! Pins the figure outputs bit for bit in the *normal* build. The
//! `validate` build re-asserts the same constants (see
//! `validate_smoke.rs`), so together the two runs prove the runtime
//! sanitizer never perturbs a result.

#[path = "common/digest.rs"]
mod digest;

#[test]
fn fig3_quick_output_is_pinned() {
    assert_eq!(
        digest::fig3_quick(),
        digest::FIG3_QUICK_DIGEST,
        "Figure 3 quick output changed bit-identity; if intentional, \
         re-pin FIG3_QUICK_DIGEST in tests/common/digest.rs"
    );
}

#[test]
fn fig5_quick_output_is_pinned() {
    assert_eq!(
        digest::fig5_quick(),
        digest::FIG5_QUICK_DIGEST,
        "Figure 5 quick output changed bit-identity; if intentional, \
         re-pin FIG5_QUICK_DIGEST in tests/common/digest.rs"
    );
}

#[test]
fn fig7_quick_output_is_pinned() {
    assert_eq!(
        digest::fig7_quick(),
        digest::FIG7_QUICK_DIGEST,
        "Figure 7 quick output changed bit-identity; if intentional, \
         re-pin FIG7_QUICK_DIGEST in tests/common/digest.rs"
    );
}

#[test]
fn fig3_faulted_quick_output_is_pinned() {
    assert_eq!(
        digest::fig3_faulted_quick(),
        digest::FIG3_FAULTED_QUICK_DIGEST,
        "fault-injected Figure 3 quick output changed bit-identity; if \
         intentional, re-pin FIG3_FAULTED_QUICK_DIGEST in \
         tests/common/digest.rs"
    );
}

#[test]
fn fig3_faulted_quick_energy_is_pinned() {
    assert_eq!(
        digest::fig3_faulted_quick_joules().to_bits(),
        digest::FIG3_FAULTED_QUICK_JOULES_BITS,
        "faulted Figure 3 energy to solution ({} J) changed bit-identity; \
         if intentional, re-pin FIG3_FAULTED_QUICK_JOULES_BITS in \
         tests/common/digest.rs",
        digest::fig3_faulted_quick_joules()
    );
}

#[test]
fn table2_quick_output_is_pinned() {
    assert_eq!(
        digest::table2_quick(),
        digest::TABLE2_QUICK_DIGEST,
        "Table II quick output changed bit-identity; if intentional, \
         re-pin TABLE2_QUICK_DIGEST in tests/common/digest.rs"
    );
}
