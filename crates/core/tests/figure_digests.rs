//! Pins the figure outputs bit for bit in the *normal* build. The
//! `validate` build re-asserts the same constants (see
//! `validate_smoke.rs`), so together the two runs prove the runtime
//! sanitizer never perturbs a result.

#[path = "common/digest.rs"]
mod digest;

#[test]
fn fig3_quick_output_is_pinned() {
    assert_eq!(
        digest::fig3_quick(),
        digest::FIG3_QUICK_DIGEST,
        "Figure 3 quick output changed bit-identity; if intentional, \
         re-pin FIG3_QUICK_DIGEST in tests/common/digest.rs"
    );
}

#[test]
fn fig5_quick_output_is_pinned() {
    assert_eq!(
        digest::fig5_quick(),
        digest::FIG5_QUICK_DIGEST,
        "Figure 5 quick output changed bit-identity; if intentional, \
         re-pin FIG5_QUICK_DIGEST in tests/common/digest.rs"
    );
}

#[test]
fn fig7_quick_output_is_pinned() {
    assert_eq!(
        digest::fig7_quick(),
        digest::FIG7_QUICK_DIGEST,
        "Figure 7 quick output changed bit-identity; if intentional, \
         re-pin FIG7_QUICK_DIGEST in tests/common/digest.rs"
    );
}

#[test]
fn fig3_faulted_quick_output_is_pinned() {
    assert_eq!(
        digest::fig3_faulted_quick(),
        digest::FIG3_FAULTED_QUICK_DIGEST,
        "fault-injected Figure 3 quick output changed bit-identity; if \
         intentional, re-pin FIG3_FAULTED_QUICK_DIGEST in \
         tests/common/digest.rs"
    );
}

#[test]
fn fig3_faulted_quick_energy_is_pinned() {
    assert_eq!(
        digest::fig3_faulted_quick_joules().to_bits(),
        digest::FIG3_FAULTED_QUICK_JOULES_BITS,
        "faulted Figure 3 energy to solution ({} J) changed bit-identity; \
         if intentional, re-pin FIG3_FAULTED_QUICK_JOULES_BITS in \
         tests/common/digest.rs",
        digest::fig3_faulted_quick_joules()
    );
}

#[test]
fn table2_quick_output_is_pinned() {
    assert_eq!(
        digest::table2_quick(),
        digest::TABLE2_QUICK_DIGEST,
        "Table II quick output changed bit-identity; if intentional, \
         re-pin TABLE2_QUICK_DIGEST in tests/common/digest.rs"
    );
}

// The paper grids are the figures as published; their pins gate the
// `-paper` campaigns in `mb-lab` (whose registry mirrors these
// constants). They cost seconds rather than milliseconds, so they live
// in their own tests instead of piggybacking on the quick pins.

#[test]
fn fig3_paper_output_is_pinned() {
    assert_eq!(
        digest::fig3_paper(),
        digest::FIG3_PAPER_DIGEST,
        "Figure 3 paper-grid output changed bit-identity; if intentional, \
         re-pin FIG3_PAPER_DIGEST in tests/common/digest.rs and the \
         mb-lab registry mirror"
    );
}

#[test]
fn fig3_faulted_paper_output_is_pinned() {
    assert_eq!(
        digest::fig3_faulted_paper(),
        digest::FIG3_FAULTED_PAPER_DIGEST,
        "fault-injected Figure 3 paper-grid output changed bit-identity; \
         if intentional, re-pin FIG3_FAULTED_PAPER_DIGEST in \
         tests/common/digest.rs and the mb-lab registry mirror"
    );
}

#[test]
fn fig5_paper_output_is_pinned() {
    assert_eq!(
        digest::fig5_paper(),
        digest::FIG5_PAPER_DIGEST,
        "Figure 5 paper-grid output changed bit-identity; if intentional, \
         re-pin FIG5_PAPER_DIGEST in tests/common/digest.rs and the \
         mb-lab registry mirror"
    );
}

#[test]
fn fig7_paper_output_is_pinned() {
    assert_eq!(
        digest::fig7_paper(),
        digest::FIG7_PAPER_DIGEST,
        "Figure 7 paper-grid output changed bit-identity; if intentional, \
         re-pin FIG7_PAPER_DIGEST in tests/common/digest.rs and the \
         mb-lab registry mirror"
    );
}

#[test]
fn table2_paper_output_is_pinned() {
    assert_eq!(
        digest::table2_paper(),
        digest::TABLE2_PAPER_DIGEST,
        "extended Table II paper output changed bit-identity; if \
         intentional, re-pin TABLE2_PAPER_DIGEST in \
         tests/common/digest.rs and the mb-lab registry mirror"
    );
}

#[test]
fn top500_trend_stream_is_pinned() {
    use montblanc::top500;
    let stream: Vec<f64> = top500::all_series()
        .into_iter()
        .flat_map(|s| top500::trend_stream(&top500::fit_trend(&top500::history(), s)))
        .collect();
    assert_eq!(
        digest::digest(stream),
        digest::TOP500_TRENDS_DIGEST,
        "Figure 1 TOP500 trend-fit stream changed bit-identity; if \
         intentional, re-pin TOP500_TRENDS_DIGEST in \
         tests/common/digest.rs and the mb-lab registry mirror"
    );
}
