//! Bit-exact digests of the figure outputs, shared between the normal
//! test build (`figure_digests.rs`) and the `validate`-feature build
//! (`validate_smoke.rs`). Both assert the same pinned constants, so a
//! green run under `--features validate` *proves* the sanitizer build is
//! bit-identical to the unvalidated build — the ISSUE's acceptance gate.

use mb_faults::FaultConfig;
use montblanc::{fig3, fig5, fig7, table2};

/// Folds a stream of `f64`s into one order-sensitive 64-bit digest.
/// Uses `to_bits`, so any change in any bit of any value changes it.
pub fn digest(values: impl IntoIterator<Item = f64>) -> u64 {
    values
        .into_iter()
        .fold(0u64, |h, v| h.rotate_left(7) ^ v.to_bits())
}

/// Digest of Figure 3 output (all three scaling panels) for an
/// arbitrary config — the quick and paper grids pin the same stream.
fn fig3_digest(cfg: &fig3::Fig3Config) -> u64 {
    let r = fig3::run(cfg);
    digest(
        [&r.linpack, &r.specfem, &r.bigdft]
            .into_iter()
            .flat_map(|s| s.points.iter().flat_map(|p| [p.speedup, p.efficiency]))
            .chain([r.core_gflops]),
    )
}

/// Digest of Figure 3 quick-config output (all three scaling panels).
pub fn fig3_quick() -> u64 {
    fig3_digest(&fig3::Fig3Config::quick())
}

/// Digest of Figure 3 over the full paper grid.
pub fn fig3_paper() -> u64 {
    fig3_digest(&fig3::Fig3Config::paper())
}

/// Digest of the fault-injected Figure 3 quick run under
/// [`FaultConfig::light`]: every completed point's scaling numbers
/// *and* its resilience counters (retries, timeouts, skips, crashes,
/// survivors). Pinning this proves the whole fault pipeline — plan
/// generation, fabric fault windows, retry/backoff, crash degradation —
/// replays bit-identically at any worker count and in both builds.
pub fn fig3_faulted_quick() -> u64 {
    fig3_faulted_digest(&fig3::Fig3Config::quick())
}

/// Digest of the fault-injected Figure 3 run over the full paper grid
/// (see [`fig3_faulted_quick`] for the stream layout).
pub fn fig3_faulted_paper() -> u64 {
    fig3_faulted_digest(&fig3::Fig3Config::paper())
}

fn fig3_faulted_digest(cfg: &fig3::Fig3Config) -> u64 {
    let r = fig3::run_faulted(cfg, FaultConfig::light());
    digest(
        [&r.linpack, &r.specfem, &r.bigdft]
            .into_iter()
            .flat_map(|s| {
                s.points.iter().flat_map(|p| {
                    [
                        p.point.speedup,
                        p.point.efficiency,
                        p.stats.retries as f64,
                        p.stats.timeouts as f64,
                        p.stats.skipped_messages as f64,
                        p.stats.crashed_ranks as f64,
                        p.surviving_ranks as f64,
                    ]
                })
            })
            .chain([r.core_gflops]),
    )
}

/// Energy to solution of the fault-injected Figure 3 quick run, in
/// joules: nameplate node power over every point's degraded makespan
/// **plus** the retransmission surcharge for its retry/timeout
/// counters. Pinned as a single `f64` bit pattern — any drift in the
/// fault pipeline, the power model or the surcharge accounting moves
/// it.
pub fn fig3_faulted_quick_joules() -> f64 {
    fig3::run_faulted(&fig3::Fig3Config::quick(), FaultConfig::light())
        .total_energy()
        .joules()
}

/// Digest of Figure 5 quick-config output (every bandwidth sample).
pub fn fig5_quick() -> u64 {
    fig5_digest(&fig5::Fig5Config::quick())
}

/// Digest of Figure 5 over the paper grid's 2 100 RT-anomaly samples.
pub fn fig5_paper() -> u64 {
    fig5_digest(&fig5::Fig5Config::paper())
}

fn fig5_digest(cfg: &fig5::Fig5Config) -> u64 {
    let r = fig5::run(cfg);
    digest(r.samples.iter().map(|s| s.bandwidth_gbps))
}

/// Digest of Figure 7 quick-config output (both unroll panels).
pub fn fig7_quick() -> u64 {
    fig7_digest(&fig7::Fig7Config::quick())
}

/// Digest of Figure 7 over the paper grid.
pub fn fig7_paper() -> u64 {
    fig7_digest(&fig7::Fig7Config::paper())
}

fn fig7_digest(cfg: &fig7::Fig7Config) -> u64 {
    let r = fig7::run(cfg);
    digest(
        [&r.nehalem, &r.tegra2].into_iter().flat_map(|p| {
            p.points
                .iter()
                .flat_map(|pt| [pt.cycles as f64, pt.cache_accesses as f64])
        }),
    )
}

/// Digest of Table II quick-config output (all ratio columns).
pub fn table2_quick() -> u64 {
    table2_digest(&table2::Table2Config::quick())
}

/// Digest of extended Table II over the paper config.
pub fn table2_paper() -> u64 {
    table2_digest(&table2::Table2Config::paper())
}

fn table2_digest(cfg: &table2::Table2Config) -> u64 {
    let r = table2::run_extended(cfg);
    digest(
        r.rows
            .iter()
            .flat_map(|row| [row.snowball, row.xeon, row.ratio, row.energy_ratio]),
    )
}

/// Pinned digests. `figure_digests.rs` guards them in the normal build;
/// `validate_smoke.rs` re-asserts them with the sanitizer compiled in.
pub const FIG3_QUICK_DIGEST: u64 = 0xd0d5_f716_d0b3_0356;
/// See [`FIG3_QUICK_DIGEST`].
pub const FIG5_QUICK_DIGEST: u64 = 0x206e_118a_c499_7a4c;
/// See [`FIG3_QUICK_DIGEST`].
pub const FIG7_QUICK_DIGEST: u64 = 0xa5a1_d292_2006_e451;
/// See [`FIG3_QUICK_DIGEST`].
pub const TABLE2_QUICK_DIGEST: u64 = 0xe2a5_d2bf_61fb_fbcf;
/// Pinned digest of [`fig3_faulted_quick`].
pub const FIG3_FAULTED_QUICK_DIGEST: u64 = 0x8ce8_a81a_59cb_2163;
/// Pinned bit pattern of [`fig3_faulted_quick_joules`] — the faulted
/// campaign's energy to solution including retransmissions
/// (≈ 150 115.41 J for the quick grids under light faults).
pub const FIG3_FAULTED_QUICK_JOULES_BITS: u64 = 0x4102_531b_4c71_b00a;
/// Pinned digest of [`fig3_paper`] — the full paper grid behind the
/// figure. The `mb-lab` campaign registry mirrors all five paper
/// constants; `campaign_digests.rs` asserts the mirrors stay equal.
pub const FIG3_PAPER_DIGEST: u64 = 0x622e_3c14_cb8e_59b9;
/// Pinned digest of [`fig3_faulted_paper`].
pub const FIG3_FAULTED_PAPER_DIGEST: u64 = 0x7c65_dc30_f714_ac45;
/// Pinned digest of [`fig5_paper`].
pub const FIG5_PAPER_DIGEST: u64 = 0xc49f_00d6_ca0a_c4ad;
/// Pinned digest of [`fig7_paper`].
pub const FIG7_PAPER_DIGEST: u64 = 0x9080_737c_78a9_66c3;
/// Pinned digest of [`table2_paper`].
pub const TABLE2_PAPER_DIGEST: u64 = 0x8bd9_f1e8_0879_d505;
/// Pinned digest of the Figure 1 TOP500 trend-fit slot stream — the
/// `top500-trends` campaign in the `mb-lab` registry mirrors this
/// constant; `campaign_digests.rs` asserts the mirrors stay equal.
pub const TOP500_TRENDS_DIGEST: u64 = 0xe0c5_c859_2a9b_23ef;
