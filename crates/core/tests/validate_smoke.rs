//! The `validate`-feature smoke run — the dynamic half of mb-check's
//! acceptance gate (`cargo test -p montblanc --features validate`):
//!
//! 1. Figure 3/5/7 and Table II quick configs complete with the model's
//!    invariant asserts armed *and* reproduce the exact bit patterns
//!    pinned by the normal build (`tests/common/digest.rs`) — the
//!    sanitizer observes, never perturbs.
//! 2. A real generated cluster trace (Figure 4) passes every `.prv`
//!    invariant in `mb_trace::validate`.
//! 3. The membench kernel runs under [`ValidatingExec`] with its array
//!    declared as a region: zero violations, and a report bit-identical
//!    to the bare [`ModelExec`] run.

#![cfg(feature = "validate")]

#[path = "common/digest.rs"]
mod digest;

use mb_cpu::exec_model::ModelExec;
use mb_cpu::validate::ValidatingExec;
use mb_kernels::membench::{self, MembenchConfig};
use mb_trace::validate::trace_violations;
use montblanc::fig4;

#[test]
fn figures_run_bit_identical_under_validation() {
    // Identical pins to figure_digests.rs in the normal build: a pass
    // here under --features validate proves bit-identity across builds.
    assert_eq!(digest::fig3_quick(), digest::FIG3_QUICK_DIGEST);
    assert_eq!(digest::fig5_quick(), digest::FIG5_QUICK_DIGEST);
    assert_eq!(digest::fig7_quick(), digest::FIG7_QUICK_DIGEST);
    assert_eq!(digest::table2_quick(), digest::TABLE2_QUICK_DIGEST);
    assert_eq!(
        digest::fig3_faulted_quick(),
        digest::FIG3_FAULTED_QUICK_DIGEST
    );
    assert_eq!(
        digest::fig3_faulted_quick_joules().to_bits(),
        digest::FIG3_FAULTED_QUICK_JOULES_BITS
    );
}

#[test]
fn paper_grids_run_bit_identical_under_validation() {
    // Same pins as figure_digests.rs for the full paper() grids — the
    // sanitizer build must reproduce the published figures bit for bit.
    assert_eq!(digest::fig3_paper(), digest::FIG3_PAPER_DIGEST);
    assert_eq!(digest::fig3_faulted_paper(), digest::FIG3_FAULTED_PAPER_DIGEST);
    assert_eq!(digest::fig5_paper(), digest::FIG5_PAPER_DIGEST);
    assert_eq!(digest::fig7_paper(), digest::FIG7_PAPER_DIGEST);
    assert_eq!(digest::table2_paper(), digest::TABLE2_PAPER_DIGEST);
}

#[test]
fn specfem_calibration_runs_once_per_process() {
    // The Tegra2 GFLOPS calibration is a pure deterministic measurement;
    // campaigns, run_on and finalize must share one cached result. The
    // counter only exists under the validate feature.
    let a = montblanc::fig3::tegra2_effective_gflops();
    let b = montblanc::fig3::tegra2_effective_gflops();
    assert_eq!(a.to_bits(), b.to_bits());
    assert_eq!(montblanc::fig3::tegra2_calibration_count(), 1);
}

#[test]
fn generated_cluster_trace_is_well_formed() {
    let report = fig4::run(&fig4::Fig4Config::quick());
    let violations = trace_violations(&report.trace);
    assert!(violations.is_empty(), "{violations:#?}");
    assert!(!report.trace.states().is_empty());
    assert!(report.alltoallv_total() > 0);
}

#[test]
fn membench_under_validating_exec_is_clean_and_identical() {
    let cfg = MembenchConfig::figure5(64 * 1024);
    let data = vec![7u8; cfg.array_bytes];

    let mut bare = ModelExec::snowball();
    let (accesses, checksum) = membench::run(&cfg, &data, &mut bare);
    let bare_report = bare.finish();

    let mut wrapped = ValidatingExec::new(ModelExec::snowball());
    wrapped.declare_region("membench array", 0, cfg.array_bytes as u64);
    let (v_accesses, v_checksum) = membench::run(&cfg, &data, &mut wrapped);
    let wrapped_report = wrapped.finish();
    wrapped.assert_clean();

    assert_eq!((accesses, checksum), (v_accesses, v_checksum));
    assert_eq!(bare_report, wrapped_report);
}

#[test]
fn validating_exec_catches_a_wild_access() {
    let cfg = MembenchConfig::figure5(16 * 1024);
    let data = vec![1u8; cfg.array_bytes];
    let mut wrapped = ValidatingExec::new(ModelExec::snowball());
    // Deliberately declare a region smaller than the array walked.
    wrapped.declare_region("half the array", 0, cfg.array_bytes as u64 / 2);
    membench::run(&cfg, &data, &mut wrapped);
    assert!(!wrapped.violations().is_empty());
    assert!(wrapped.violations()[0].contains("outside every declared region"));
}
