//! Parallel/serial bit-identity for the paper experiments that fan out
//! over `mb_simcore::par` — the ISSUE's acceptance gate. Every report
//! type derives `PartialEq`, so equality here means *every* number in
//! the figure agrees bit for bit.

use mb_faults::FaultConfig;
use mb_simcore::par::{with_chaos, with_threads};
use montblanc::{ablation, fig3, fig5, fig7, table2};

#[test]
fn fig5_42_reps_parallel_matches_serial() {
    // The paper's 42 randomised repetitions per size (sizes trimmed to
    // keep the test fast; the repetition count is the part that
    // exercises the plan/anomaly/allocator sequencing).
    let cfg = fig5::Fig5Config {
        reps: 42,
        ..fig5::Fig5Config::quick()
    };
    let serial = with_threads(1, || fig5::run(&cfg));
    let parallel = with_threads(4, || fig5::run(&cfg));
    assert_eq!(serial, parallel);
    assert_eq!(serial.samples.len(), cfg.sizes.len() * 42);
}

#[test]
fn fig7_unroll_sweep_parallel_matches_serial() {
    let cfg = fig7::Fig7Config::quick();
    let serial = with_threads(1, || fig7::run(&cfg));
    let parallel = with_threads(4, || fig7::run(&cfg));
    assert_eq!(serial, parallel);
    assert_eq!(serial.nehalem.points.len(), cfg.max_unroll as usize);
}

#[test]
fn table2_parallel_matches_serial() {
    let cfg = table2::Table2Config::quick();
    let serial = with_threads(1, || table2::run_extended(&cfg));
    let parallel = with_threads(4, || table2::run_extended(&cfg));
    assert_eq!(serial, parallel);
}

#[test]
fn faulted_fig3_serial_parallel_chaos_identical() {
    // The ISSUE's resilience acceptance gate: a fault-injected Figure 3
    // run is a pure function of (seed, FaultConfig) — serial, parallel
    // and chaos-scheduled runs agree bit for bit, retries, crashes,
    // backoff waits and all.
    let cfg = fig3::Fig3Config {
        linpack_cores: vec![8, 32],
        specfem_cores: vec![4, 48],
        bigdft_cores: vec![4, 16],
        iterations: 2,
    };
    let faults = FaultConfig::light();
    let serial = with_threads(1, || fig3::run_faulted(&cfg, faults));
    let parallel = with_threads(4, || fig3::run_faulted(&cfg, faults));
    let chaos = with_threads(4, || with_chaos(0xC4A05, || fig3::run_faulted(&cfg, faults)));
    assert_eq!(serial, parallel);
    assert_eq!(serial, chaos);
    // And the faults really fired: degraded, not silently fault-free.
    let total = serial.total_stats();
    assert!(
        total.retries > 0 || total.crashed_ranks > 0,
        "light fault plan should cause visible degradation: {total:?}"
    );
}

#[test]
fn switch_ablation_parallel_matches_serial() {
    let serial = with_threads(1, || ablation::switch_upgrade(&[8, 16], 2));
    let parallel = with_threads(4, || ablation::switch_upgrade(&[8, 16], 2));
    assert_eq!(serial, parallel);
}
