//! Parallel/serial bit-identity for the paper experiments that fan out
//! over `mb_simcore::par` — the ISSUE's acceptance gate. Every report
//! type derives `PartialEq`, so equality here means *every* number in
//! the figure agrees bit for bit.

use mb_simcore::par::with_threads;
use montblanc::{ablation, fig5, fig7, table2};

#[test]
fn fig5_42_reps_parallel_matches_serial() {
    // The paper's 42 randomised repetitions per size (sizes trimmed to
    // keep the test fast; the repetition count is the part that
    // exercises the plan/anomaly/allocator sequencing).
    let cfg = fig5::Fig5Config {
        reps: 42,
        ..fig5::Fig5Config::quick()
    };
    let serial = with_threads(1, || fig5::run(&cfg));
    let parallel = with_threads(4, || fig5::run(&cfg));
    assert_eq!(serial, parallel);
    assert_eq!(serial.samples.len(), cfg.sizes.len() * 42);
}

#[test]
fn fig7_unroll_sweep_parallel_matches_serial() {
    let cfg = fig7::Fig7Config::quick();
    let serial = with_threads(1, || fig7::run(&cfg));
    let parallel = with_threads(4, || fig7::run(&cfg));
    assert_eq!(serial, parallel);
    assert_eq!(serial.nehalem.points.len(), cfg.max_unroll as usize);
}

#[test]
fn table2_parallel_matches_serial() {
    let cfg = table2::Table2Config::quick();
    let serial = with_threads(1, || table2::run_extended(&cfg));
    let parallel = with_threads(4, || table2::run_extended(&cfg));
    assert_eq!(serial, parallel);
}

#[test]
fn switch_ablation_parallel_matches_serial() {
    let serial = with_threads(1, || ablation::switch_upgrade(&[8, 16], 2));
    let parallel = with_threads(4, || ablation::switch_upgrade(&[8, 16], 2));
    assert_eq!(serial, parallel);
}
