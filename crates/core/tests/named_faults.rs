//! Pins that name-addressed and index-addressed fault plans for the
//! same element are interchangeable all the way down: the resolved
//! plans are `==`, and the *measured* Figure 3 slot streams they
//! produce digest bit-identically. This is the contract that makes
//! `host1 -> sw1` a safe spelling in hand-written fault scenarios —
//! resolution adds no rounding, reordering, or extra RNG draws.

use mb_faults::{Fault, FaultPlan, FaultWindow, NamedFault};
use mb_simcore::time::SimTime;
use montblanc::fig3::{self, Fig3Config};

const PLAN_SEED: u64 = 0x11FE;

/// The workspace's order-sensitive value-stream fold (the same one
/// `tests/common/digest.rs` pins the figures with — restated rather
/// than included so this binary does not drag in every figure runner).
fn digest(values: impl IntoIterator<Item = f64>) -> u64 {
    values
        .into_iter()
        .fold(0u64, |h, v| h.rotate_left(7) ^ v.to_bits())
}

fn outage() -> FaultWindow {
    FaultWindow {
        start: SimTime::from_millis(1),
        end: SimTime::from_millis(60),
    }
}

/// `host1`'s edge link, hand-derived from the Tibidabo builder's
/// creation order. Single-leaf fabrics (≤ 16 nodes): the switch comes
/// first, then each host connects duplex — host1's uplink is directed
/// link 2. Two-tier fabrics: root `sw0`, first leaf `sw1` (uplink pair
/// 0/1), then host0 (2/3) and host1 (4/5) attach to `sw1`.
fn host1_uplink(cores: u32) -> (u32, &'static str) {
    if cores.div_ceil(2) <= 16 {
        (2, "sw0")
    } else {
        (4, "sw1")
    }
}

#[test]
fn named_and_index_addressed_plans_digest_identically() {
    let cfg = Fig3Config::quick();
    let rate = fig3::tegra2_effective_gflops();
    let mut named_stream = Vec::new();
    let mut index_stream = Vec::new();
    let mut healthy_stream = Vec::new();
    for (panel, cores) in fig3::scaling_slots(&cfg) {
        let (link, leaf) = host1_uplink(cores);
        let names = fig3::slot_element_names(cores);
        let named_plan = FaultPlan::from_named(
            PLAN_SEED,
            &[NamedFault::LinkDown {
                from: "host1".into(),
                to: leaf.into(),
                window: outage(),
            }],
            &names,
        )
        .expect("names resolve on every quick-grid fabric");
        let index_plan = FaultPlan::from_faults(
            PLAN_SEED,
            vec![Fault::LinkDown {
                link,
                window: outage(),
            }],
        );
        // Resolution lands on the hand-derived index exactly.
        assert_eq!(
            named_plan,
            index_plan,
            "{}: resolved plan diverged from the index spelling",
            fig3::slot_label(panel, cores)
        );
        named_stream.extend(fig3::measure_planned_slot(&cfg, &named_plan, panel, cores, rate));
        index_stream.extend(fig3::measure_planned_slot(&cfg, &index_plan, panel, cores, rate));
        healthy_stream.push(fig3::measure_scaling_slot(&cfg, panel, cores, rate));
    }
    assert_eq!(
        digest(named_stream.iter().copied()),
        digest(index_stream.iter().copied()),
        "name- and index-addressed faulted Fig 3 digests must be bit-identical"
    );
    // The fault actually bites: taking host1's uplink down for 60 ms
    // must stretch at least one slot's makespan, or the identity above
    // would be comparing two no-op runs.
    let named_times: Vec<f64> = named_stream.iter().step_by(6).copied().collect();
    assert!(
        named_times
            .iter()
            .zip(&healthy_stream)
            .any(|(faulted, healthy)| faulted > healthy),
        "the planned outage perturbed no slot at all"
    );
}

#[test]
fn misspelled_elements_fail_resolution_instead_of_retargeting() {
    let names = fig3::slot_element_names(8);
    let err = FaultPlan::from_named(
        PLAN_SEED,
        &[NamedFault::LinkDown {
            from: "host1".into(),
            to: "sw7".into(), // no such switch on a 4-node fabric
            window: outage(),
        }],
        &names,
    )
    .expect_err("unknown endpoint must not resolve");
    assert_eq!(
        err,
        mb_faults::NameError::UnknownLink {
            from: "host1".into(),
            to: "sw7".into(),
        }
    );
}
