//! A Paraver-`.prv`-style text encoder.
//!
//! Real Paraver traces are line-oriented text: a header followed by
//! records `1:…` (states), `2:…` (events) and `3:…` (communications).
//! [`write_prv`] emits the same shape — enough for the Figure 4 artefact
//! to be inspected with standard text tools. Encoding goes through
//! [`bytes::BytesMut`] so large traces build without intermediate
//! `String` reallocation churn.

use crate::record::StateKind;
use crate::trace::Trace;
use bytes::{BufMut, BytesMut};

fn state_code(kind: StateKind) -> u32 {
    match kind {
        StateKind::Idle => 0,
        StateKind::Compute => 1,
        StateKind::Communicate => 2,
        StateKind::Wait => 3,
    }
}

/// Encodes a trace in Paraver-like `.prv` text form.
///
/// Record formats (all times in ns):
///
/// ```text
/// #Paraver (sim):<end_ns>:<nranks>
/// 1:<rank>:<start>:<end>:<state-code>
/// 2:<rank>:<time>:<label>:<value>
/// 3:<src>:<send>:<dst>:<recv>:<bytes>:<collective|p2p>:<op-id>
/// ```
///
/// # Examples
///
/// ```
/// use mb_trace::{write_prv, Trace};
/// use mb_trace::record::StateKind;
/// use mb_simcore::time::SimTime;
///
/// let mut t = Trace::new(1);
/// t.push_state(0, SimTime::ZERO, SimTime::from_nanos(5), StateKind::Compute);
/// let text = String::from_utf8(write_prv(&t)).expect("ascii");
/// assert!(text.starts_with("#Paraver"));
/// assert!(text.contains("1:0:0:5:1"));
/// ```
pub fn write_prv(trace: &Trace) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(
        64 + 32 * trace.states().len() + 48 * trace.comms().len() + 32 * trace.events().len(),
    );
    buf.put_slice(
        format!(
            "#Paraver (sim):{}:{}\n",
            trace.end_time().as_nanos(),
            trace.num_ranks()
        )
        .as_bytes(),
    );
    for s in trace.states() {
        buf.put_slice(
            format!(
                "1:{}:{}:{}:{}\n",
                s.rank,
                s.start.as_nanos(),
                s.end.as_nanos(),
                state_code(s.kind)
            )
            .as_bytes(),
        );
    }
    for e in trace.events() {
        buf.put_slice(
            format!("2:{}:{}:{}:{}\n", e.rank, e.time.as_nanos(), e.label, e.value).as_bytes(),
        );
    }
    for c in trace.comms() {
        let (coll, id) = match c.collective {
            Some((kind, id)) => (kind.to_string(), id),
            None => ("p2p".to_string(), 0),
        };
        buf.put_slice(
            format!(
                "3:{}:{}:{}:{}:{}:{}:{}\n",
                c.src,
                c.send_time.as_nanos(),
                c.dst,
                c.recv_time.as_nanos(),
                c.bytes,
                coll,
                id
            )
            .as_bytes(),
        );
    }
    buf.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CollectiveKind, CommRecord};
    use mb_simcore::time::SimTime;

    #[test]
    fn header_and_records() {
        let mut t = Trace::new(2);
        t.push_state(
            0,
            SimTime::ZERO,
            SimTime::from_nanos(100),
            StateKind::Compute,
        );
        t.push_event(1, SimTime::from_nanos(50), "phase", 3);
        t.push_comm(CommRecord {
            src: 0,
            dst: 1,
            send_time: SimTime::from_nanos(10),
            recv_time: SimTime::from_nanos(60),
            bytes: 256,
            collective: Some((CollectiveKind::Alltoallv, 4)),
        });
        let text = String::from_utf8(write_prv(&t)).expect("ascii");
        assert!(text.starts_with("#Paraver (sim):100:2\n"));
        assert!(text.contains("1:0:0:100:1\n"));
        assert!(text.contains("2:1:50:phase:3\n"));
        assert!(text.contains("3:0:10:1:60:256:all_to_all_v:4\n"));
    }

    #[test]
    fn p2p_marked() {
        let mut t = Trace::new(2);
        t.push_comm(CommRecord {
            src: 1,
            dst: 0,
            send_time: SimTime::ZERO,
            recv_time: SimTime::from_nanos(5),
            bytes: 1,
            collective: None,
        });
        let text = String::from_utf8(write_prv(&t)).expect("ascii");
        assert!(text.contains(":p2p:0\n"));
    }

    #[test]
    fn state_codes_stable() {
        assert_eq!(state_code(StateKind::Idle), 0);
        assert_eq!(state_code(StateKind::Compute), 1);
        assert_eq!(state_code(StateKind::Communicate), 2);
        assert_eq!(state_code(StateKind::Wait), 3);
    }
}
