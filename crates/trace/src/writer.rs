//! A Paraver-`.prv`-style text encoder.
//!
//! Real Paraver traces are line-oriented text: a header followed by
//! records `1:…` (states), `2:…` (events) and `3:…` (communications).
//! [`write_prv`] emits the same shape — enough for the Figure 4 artefact
//! to be inspected with standard text tools.
//!
//! Encoding is allocation-free per record: integers are formatted
//! directly into the output buffer (no intermediate `format!` strings),
//! so large traces build at memcpy speed. [`write_prv_to`] streams the
//! same bytes through any [`std::io::Write`] sink, flushing in 64 KiB
//! chunks so multi-gigabyte traces never materialise in memory.

use crate::record::{CollectiveKind, StateKind};
use crate::trace::Trace;
use std::io::{self, Write};

/// Chunk size used by [`write_prv_to`] between flushes to the sink.
const STREAM_CHUNK: usize = 64 * 1024;

fn state_code(kind: StateKind) -> u32 {
    match kind {
        StateKind::Idle => 0,
        StateKind::Compute => 1,
        StateKind::Communicate => 2,
        StateKind::Wait => 3,
    }
}

fn collective_code(kind: CollectiveKind) -> &'static str {
    match kind {
        CollectiveKind::Barrier => "barrier",
        CollectiveKind::Bcast => "bcast",
        CollectiveKind::Allreduce => "allreduce",
        CollectiveKind::Alltoall => "alltoall",
        CollectiveKind::Alltoallv => "all_to_all_v",
        CollectiveKind::Gather => "gather",
    }
}

/// Appends the decimal representation of `v` without allocating.
fn push_u64(buf: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 20]; // u64::MAX has 20 digits
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.extend_from_slice(&tmp[i..]);
}

/// Appends one `field:` with its trailing separator.
fn push_field(buf: &mut Vec<u8>, v: u64) {
    push_u64(buf, v);
    buf.push(b':');
}

fn encode_header(buf: &mut Vec<u8>, trace: &Trace) {
    buf.extend_from_slice(b"#Paraver (sim):");
    push_field(buf, trace.end_time().as_nanos());
    push_u64(buf, trace.num_ranks() as u64);
    buf.push(b'\n');
}

fn encode_state(buf: &mut Vec<u8>, s: &crate::record::StateRecord) {
    buf.extend_from_slice(b"1:");
    push_field(buf, u64::from(s.rank));
    push_field(buf, s.start.as_nanos());
    push_field(buf, s.end.as_nanos());
    push_u64(buf, u64::from(state_code(s.kind)));
    buf.push(b'\n');
}

fn encode_event(buf: &mut Vec<u8>, e: &crate::record::EventRecord) {
    buf.extend_from_slice(b"2:");
    push_field(buf, u64::from(e.rank));
    push_field(buf, e.time.as_nanos());
    buf.extend_from_slice(e.label.as_bytes());
    buf.push(b':');
    push_u64(buf, e.value);
    buf.push(b'\n');
}

fn encode_comm(buf: &mut Vec<u8>, c: &crate::record::CommRecord) {
    buf.extend_from_slice(b"3:");
    push_field(buf, u64::from(c.src));
    push_field(buf, c.send_time.as_nanos());
    push_field(buf, u64::from(c.dst));
    push_field(buf, c.recv_time.as_nanos());
    push_field(buf, c.bytes);
    let (coll, id) = match c.collective {
        Some((kind, id)) => (collective_code(kind), id),
        None => ("p2p", 0),
    };
    buf.extend_from_slice(coll.as_bytes());
    buf.push(b':');
    push_u64(buf, id);
    buf.push(b'\n');
}

/// Encodes a trace in Paraver-like `.prv` text form.
///
/// Record formats (all times in ns):
///
/// ```text
/// #Paraver (sim):<end_ns>:<nranks>
/// 1:<rank>:<start>:<end>:<state-code>
/// 2:<rank>:<time>:<label>:<value>
/// 3:<src>:<send>:<dst>:<recv>:<bytes>:<collective|p2p>:<op-id>
/// ```
///
/// # Examples
///
/// ```
/// use mb_trace::{write_prv, Trace};
/// use mb_trace::record::StateKind;
/// use mb_simcore::time::SimTime;
///
/// let mut t = Trace::new(1);
/// t.push_state(0, SimTime::ZERO, SimTime::from_nanos(5), StateKind::Compute);
/// let text = String::from_utf8(write_prv(&t)).expect("ascii");
/// assert!(text.starts_with("#Paraver"));
/// assert!(text.contains("1:0:0:5:1"));
/// ```
pub fn write_prv(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        64 + 32 * trace.states().len() + 48 * trace.comms().len() + 32 * trace.events().len(),
    );
    encode_header(&mut buf, trace);
    for s in trace.states() {
        encode_state(&mut buf, s);
    }
    for e in trace.events() {
        encode_event(&mut buf, e);
    }
    for c in trace.comms() {
        encode_comm(&mut buf, c);
    }
    buf
}

/// Streams the `.prv` encoding of `trace` into `out`, flushing in
/// [`STREAM_CHUNK`]-sized batches. Produces bytes identical to
/// [`write_prv`] without holding the whole trace text in memory.
///
/// # Errors
///
/// Propagates any I/O error from the sink.
///
/// # Examples
///
/// ```
/// use mb_trace::{write_prv, write_prv_to, Trace};
/// use mb_trace::record::StateKind;
/// use mb_simcore::time::SimTime;
///
/// let mut t = Trace::new(1);
/// t.push_state(0, SimTime::ZERO, SimTime::from_nanos(5), StateKind::Compute);
/// let mut streamed = Vec::new();
/// write_prv_to(&t, &mut streamed).expect("write to Vec cannot fail");
/// assert_eq!(streamed, write_prv(&t));
/// ```
pub fn write_prv_to<W: Write>(trace: &Trace, mut out: W) -> io::Result<()> {
    let mut buf = Vec::with_capacity(STREAM_CHUNK + 128);
    encode_header(&mut buf, trace);
    for s in trace.states() {
        encode_state(&mut buf, s);
        if buf.len() >= STREAM_CHUNK {
            out.write_all(&buf)?;
            buf.clear();
        }
    }
    for e in trace.events() {
        encode_event(&mut buf, e);
        if buf.len() >= STREAM_CHUNK {
            out.write_all(&buf)?;
            buf.clear();
        }
    }
    for c in trace.comms() {
        encode_comm(&mut buf, c);
        if buf.len() >= STREAM_CHUNK {
            out.write_all(&buf)?;
            buf.clear();
        }
    }
    out.write_all(&buf)?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CollectiveKind, CommRecord};
    use mb_simcore::time::SimTime;

    #[test]
    fn header_and_records() {
        let mut t = Trace::new(2);
        t.push_state(
            0,
            SimTime::ZERO,
            SimTime::from_nanos(100),
            StateKind::Compute,
        );
        t.push_event(1, SimTime::from_nanos(50), "phase", 3);
        t.push_comm(CommRecord {
            src: 0,
            dst: 1,
            send_time: SimTime::from_nanos(10),
            recv_time: SimTime::from_nanos(60),
            bytes: 256,
            collective: Some((CollectiveKind::Alltoallv, 4)),
        });
        let text = String::from_utf8(write_prv(&t)).expect("ascii");
        assert!(text.starts_with("#Paraver (sim):100:2\n"));
        assert!(text.contains("1:0:0:100:1\n"));
        assert!(text.contains("2:1:50:phase:3\n"));
        assert!(text.contains("3:0:10:1:60:256:all_to_all_v:4\n"));
    }

    #[test]
    fn p2p_marked() {
        let mut t = Trace::new(2);
        t.push_comm(CommRecord {
            src: 1,
            dst: 0,
            send_time: SimTime::ZERO,
            recv_time: SimTime::from_nanos(5),
            bytes: 1,
            collective: None,
        });
        let text = String::from_utf8(write_prv(&t)).expect("ascii");
        assert!(text.contains(":p2p:0\n"));
    }

    #[test]
    fn state_codes_stable() {
        assert_eq!(state_code(StateKind::Idle), 0);
        assert_eq!(state_code(StateKind::Compute), 1);
        assert_eq!(state_code(StateKind::Communicate), 2);
        assert_eq!(state_code(StateKind::Wait), 3);
    }

    #[test]
    fn push_u64_matches_display() {
        for v in [0u64, 1, 9, 10, 99, 100, 12_345, u64::MAX] {
            let mut buf = Vec::new();
            push_u64(&mut buf, v);
            assert_eq!(String::from_utf8(buf).expect("ascii"), v.to_string());
        }
    }

    #[test]
    fn streamed_bytes_identical_to_vec() {
        let mut t = Trace::new(4);
        for r in 0..4u32 {
            for i in 0..600u64 {
                t.push_state(
                    r,
                    SimTime::from_nanos(i * 10),
                    SimTime::from_nanos(i * 10 + 7),
                    StateKind::Compute,
                );
                t.push_event(r, SimTime::from_nanos(i * 10 + 3), "ctr", i);
            }
        }
        t.push_comm(CommRecord {
            src: 3,
            dst: 2,
            send_time: SimTime::from_nanos(11),
            recv_time: SimTime::from_nanos(19),
            bytes: 4096,
            collective: Some((CollectiveKind::Allreduce, 9)),
        });
        let mut streamed = Vec::new();
        write_prv_to(&t, &mut streamed).expect("vec sink");
        assert_eq!(streamed, write_prv(&t));
        // Big enough to have crossed at least one chunk boundary.
        assert!(streamed.len() > STREAM_CHUNK);
    }
}
