//! # mb-trace — Paraver-like tracing and trace analysis
//!
//! The paper diagnoses BigDFT's scaling collapse by instrumenting the code
//! (Extrae-style) and inspecting the trace in Paraver (Figure 4): the
//! `all_to_all_v` collectives that should be short are *sometimes long and
//! delayed*, implicating the Ethernet switches. This crate provides the
//! substitute tooling:
//!
//! * [`record`] — trace record types: per-rank **states** (compute /
//!   communicate / wait), point **events**, and **communications** with
//!   matching send/receive times and an optional collective id;
//! * [`trace`] — the [`trace::Trace`] container and builder;
//! * [`writer`] — a Paraver-`.prv`-style text encoder;
//! * [`analysis`] — the Figure 4 analysis: group communications by
//!   collective, compare durations against the median, and flag
//!   **delayed collectives**; plus an ASCII Gantt renderer.
//!
//! # Examples
//!
//! ```
//! use mb_trace::record::StateKind;
//! use mb_trace::trace::Trace;
//! use mb_simcore::time::SimTime;
//!
//! let mut trace = Trace::new(2);
//! trace.push_state(0, SimTime::ZERO, SimTime::from_micros(10), StateKind::Compute);
//! trace.push_state(1, SimTime::ZERO, SimTime::from_micros(8), StateKind::Compute);
//! assert_eq!(trace.num_ranks(), 2);
//! assert_eq!(trace.states().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod reader;
pub mod record;
pub mod trace;
pub mod validate;
pub mod writer;

pub use analysis::{CollectiveReport, DelayAnalysis};
pub use record::{CollectiveKind, CommRecord, EventRecord, StateKind, StateRecord};
pub use reader::parse_prv;
pub use trace::Trace;
pub use validate::{trace_violations, validate_trace};
pub use writer::{write_prv, write_prv_to};
