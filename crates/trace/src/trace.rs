//! The trace container.

use crate::record::{CommRecord, EventRecord, StateKind, StateRecord};
use mb_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// An execution trace: states, events and communications over a fixed set
/// of ranks.
///
/// Records may be pushed in any order; accessors that need ordering sort
/// lazily on demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    num_ranks: u32,
    states: Vec<StateRecord>,
    events: Vec<EventRecord>,
    comms: Vec<CommRecord>,
}

impl Trace {
    /// Creates an empty trace over `num_ranks` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `num_ranks` is zero.
    pub fn new(num_ranks: u32) -> Self {
        assert!(num_ranks > 0, "trace needs at least one rank");
        Trace {
            num_ranks,
            ..Trace::default()
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u32 {
        self.num_ranks
    }

    /// Appends a state interval.
    ///
    /// # Panics
    ///
    /// Panics if the rank is out of range or `end < start`.
    pub fn push_state(&mut self, rank: u32, start: SimTime, end: SimTime, kind: StateKind) {
        assert!(rank < self.num_ranks, "rank out of range");
        assert!(end >= start, "state interval must not be negative");
        self.states.push(StateRecord {
            rank,
            start,
            end,
            kind,
        });
    }

    /// Appends a point event.
    ///
    /// # Panics
    ///
    /// Panics if the rank is out of range.
    pub fn push_event(&mut self, rank: u32, time: SimTime, label: impl Into<String>, value: u64) {
        assert!(rank < self.num_ranks, "rank out of range");
        self.events.push(EventRecord {
            rank,
            time,
            label: label.into(),
            value,
        });
    }

    /// Appends a communication record.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the receive precedes
    /// the send.
    pub fn push_comm(&mut self, comm: CommRecord) {
        assert!(
            comm.src < self.num_ranks && comm.dst < self.num_ranks,
            "rank out of range"
        );
        assert!(comm.recv_time >= comm.send_time, "receive precedes send");
        self.comms.push(comm);
    }

    /// All state records, unsorted.
    pub fn states(&self) -> &[StateRecord] {
        &self.states
    }

    /// All events, unsorted.
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// All communications, unsorted.
    pub fn comms(&self) -> &[CommRecord] {
        &self.comms
    }

    /// The latest timestamp appearing anywhere in the trace.
    pub fn end_time(&self) -> SimTime {
        let s = self.states.iter().map(|s| s.end).max();
        let e = self.events.iter().map(|e| e.time).max();
        let c = self.comms.iter().map(|c| c.recv_time).max();
        [s, e, c].into_iter().flatten().max().unwrap_or(SimTime::ZERO)
    }

    /// State records of one rank, sorted by start time.
    pub fn rank_states(&self, rank: u32) -> Vec<StateRecord> {
        let mut v: Vec<StateRecord> = self
            .states
            .iter()
            .copied()
            .filter(|s| s.rank == rank)
            .collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// Total time rank `rank` spent in `kind` states.
    pub fn time_in_state(&self, rank: u32, kind: StateKind) -> SimTime {
        self.states
            .iter()
            .filter(|s| s.rank == rank && s.kind == kind)
            .map(|s| s.duration())
            .sum()
    }

    /// Fraction of the trace's wall-clock the average rank spends
    /// computing — a quick efficiency indicator.
    pub fn compute_fraction(&self) -> f64 {
        let end = self.end_time().as_secs_f64();
        if end == 0.0 {
            return 0.0;
        }
        let total: f64 = (0..self.num_ranks)
            .map(|r| self.time_in_state(r, StateKind::Compute).as_secs_f64())
            .sum();
        total / (end * self.num_ranks as f64)
    }

    /// Merges another trace's records (ranks must match).
    ///
    /// # Panics
    ///
    /// Panics if the rank counts differ.
    pub fn merge(&mut self, other: Trace) {
        assert_eq!(self.num_ranks, other.num_ranks, "rank count mismatch");
        self.states.extend(other.states);
        self.events.extend(other.events);
        self.comms.extend(other.comms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CollectiveKind;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn push_and_query_states() {
        let mut t = Trace::new(2);
        t.push_state(0, us(0), us(10), StateKind::Compute);
        t.push_state(0, us(10), us(12), StateKind::Communicate);
        t.push_state(1, us(0), us(8), StateKind::Compute);
        assert_eq!(t.time_in_state(0, StateKind::Compute), us(10));
        assert_eq!(t.time_in_state(0, StateKind::Communicate), us(2));
        assert_eq!(t.time_in_state(1, StateKind::Wait), SimTime::ZERO);
        assert_eq!(t.end_time(), us(12));
    }

    #[test]
    fn rank_states_sorted() {
        let mut t = Trace::new(1);
        t.push_state(0, us(5), us(6), StateKind::Wait);
        t.push_state(0, us(0), us(5), StateKind::Compute);
        let v = t.rank_states(0);
        assert_eq!(v[0].start, us(0));
        assert_eq!(v[1].start, us(5));
    }

    #[test]
    fn compute_fraction() {
        let mut t = Trace::new(2);
        t.push_state(0, us(0), us(10), StateKind::Compute);
        t.push_state(1, us(0), us(5), StateKind::Compute);
        t.push_state(1, us(5), us(10), StateKind::Wait);
        assert!((t.compute_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn comm_and_event_records() {
        let mut t = Trace::new(4);
        t.push_event(2, us(3), "phase", 1);
        t.push_comm(CommRecord {
            src: 0,
            dst: 3,
            send_time: us(1),
            recv_time: us(2),
            bytes: 64,
            collective: Some((CollectiveKind::Bcast, 0)),
        });
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.comms().len(), 1);
        assert_eq!(t.end_time(), us(3));
    }

    #[test]
    fn merge_combines() {
        let mut a = Trace::new(2);
        a.push_state(0, us(0), us(1), StateKind::Compute);
        let mut b = Trace::new(2);
        b.push_state(1, us(0), us(2), StateKind::Compute);
        a.merge(b);
        assert_eq!(a.states().len(), 2);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn bad_rank_panics() {
        let mut t = Trace::new(1);
        t.push_state(1, us(0), us(1), StateKind::Compute);
    }

    #[test]
    #[should_panic(expected = "receive precedes send")]
    fn causality_enforced() {
        let mut t = Trace::new(2);
        t.push_comm(CommRecord {
            src: 0,
            dst: 1,
            send_time: us(5),
            recv_time: us(4),
            bytes: 1,
            collective: None,
        });
    }

    #[test]
    fn empty_trace_end_time_zero() {
        let t = Trace::new(3);
        assert_eq!(t.end_time(), SimTime::ZERO);
        assert_eq!(t.compute_fraction(), 0.0);
    }
}
