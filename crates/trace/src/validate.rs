//! Trace invariant validation — the runtime half of the determinism
//! contract for `.prv` data.
//!
//! A trace that violates these invariants would render as garbage in
//! Paraver and, worse, silently corrupt every downstream analysis
//! (Figure 4's delay attribution sums state durations; a negative or
//! overlapping interval poisons the totals). The checks:
//!
//! * state intervals run forwards (`start <= end`);
//! * per rank, state intervals are disjoint — sorted by start, each
//!   begins no earlier than its predecessor ends (monotonic timestamps
//!   in the emitted `.prv`);
//! * communications complete after they start (`recv >= send`);
//! * every rank index is within the declared rank count;
//! * no record extends past the trace's end time.

use crate::trace::Trace;

/// Checks every trace invariant; returns all violations found (empty ⇒
/// the trace is well-formed).
pub fn trace_violations(trace: &Trace) -> Vec<String> {
    let mut out = Vec::new();
    let n = trace.num_ranks();
    let end = trace.end_time();
    for (i, s) in trace.states().iter().enumerate() {
        if s.rank >= n {
            out.push(format!("state #{i}: rank {} out of range (< {n})", s.rank));
        }
        if s.start > s.end {
            out.push(format!(
                "state #{i} (rank {}): start {} after end {}",
                s.rank, s.start, s.end
            ));
        }
        if s.end > end {
            out.push(format!(
                "state #{i} (rank {}): end {} past trace end {end}",
                s.rank, s.end
            ));
        }
    }
    for rank in 0..n {
        let mut intervals: Vec<(u64, u64)> = trace
            .states()
            .iter()
            .filter(|s| s.rank == rank && s.start <= s.end)
            .map(|s| (s.start.as_nanos(), s.end.as_nanos()))
            .collect();
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            if w[1].0 < w[0].1 {
                out.push(format!(
                    "rank {rank}: state intervals overlap \
                     ([{}, {}) and [{}, {}) ns)",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
    }
    for (i, e) in trace.events().iter().enumerate() {
        if e.rank >= n {
            out.push(format!("event #{i}: rank {} out of range (< {n})", e.rank));
        }
        if e.time > end {
            out.push(format!(
                "event #{i} (rank {}): time {} past trace end {end}",
                e.rank, e.time
            ));
        }
    }
    for (i, c) in trace.comms().iter().enumerate() {
        if c.src >= n || c.dst >= n {
            out.push(format!(
                "comm #{i}: ranks {}→{} out of range (< {n})",
                c.src, c.dst
            ));
        }
        if c.recv_time < c.send_time {
            out.push(format!(
                "comm #{i} ({}→{}): receive {} precedes send {}",
                c.src, c.dst, c.recv_time, c.send_time
            ));
        }
        if c.recv_time > end {
            out.push(format!(
                "comm #{i} ({}→{}): receive {} past trace end {end}",
                c.src, c.dst, c.recv_time
            ));
        }
    }
    out
}

/// [`trace_violations`] as a `Result` for `?`-style use.
///
/// # Errors
///
/// Returns the violation list when the trace is malformed.
pub fn validate_trace(trace: &Trace) -> Result<(), Vec<String>> {
    let v = trace_violations(trace);
    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CommRecord, StateKind};
    use mb_simcore::time::SimTime;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn well_formed_trace_passes() {
        let mut t = Trace::new(2);
        t.push_state(0, us(0), us(10), StateKind::Compute);
        t.push_state(0, us(10), us(12), StateKind::Communicate);
        t.push_state(1, us(0), us(12), StateKind::Wait);
        t.push_event(1, us(5), "phase", 1);
        t.push_comm(CommRecord {
            src: 0,
            dst: 1,
            send_time: us(10),
            recv_time: us(12),
            bytes: 4096,
            collective: None,
        });
        assert_eq!(validate_trace(&t), Ok(()));
    }

    #[test]
    fn overlapping_states_are_flagged() {
        let mut t = Trace::new(1);
        t.push_state(0, us(0), us(10), StateKind::Compute);
        t.push_state(0, us(7), us(12), StateKind::Wait);
        let v = trace_violations(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("overlap"), "{v:?}");
    }

    #[test]
    fn touching_intervals_are_fine() {
        let mut t = Trace::new(1);
        t.push_state(0, us(0), us(10), StateKind::Compute);
        t.push_state(0, us(10), us(20), StateKind::Communicate);
        assert!(trace_violations(&t).is_empty());
    }
}
