//! Trace analysis: the Figure 4 delayed-collective diagnosis and an ASCII
//! Gantt renderer.
//!
//! The paper's finding: on 36 cores, *most* `all_to_all_v` operations are
//! short, but some are "longer and delayed — in some cases all the nodes
//! are delayed while in other, only part of them suffers". The analysis
//! here formalises that reading of the Paraver timeline: per collective
//! invocation, compare its duration to the median over all invocations of
//! the same kind; anything beyond `threshold ×` the median is **delayed**.

use crate::record::{CollectiveKind, StateKind};
use crate::trace::Trace;
use mb_simcore::stats::Summary;
use mb_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Verdict on one collective invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveReport {
    /// Collective kind.
    pub kind: CollectiveKind,
    /// Operation id (shared by all its messages).
    pub op_id: u64,
    /// Earliest send in the operation.
    pub start: SimTime,
    /// Latest receive in the operation.
    pub end: SimTime,
    /// Number of messages.
    pub messages: usize,
    /// Duration relative to the median of its kind.
    pub slowdown_vs_median: f64,
    /// Whether the analysis flags the operation as delayed.
    pub delayed: bool,
    /// Ranks participating whose last receive was itself beyond the
    /// threshold (distinguishes "all nodes delayed" from "only part of
    /// them", per the paper).
    pub delayed_ranks: Vec<u32>,
}

impl CollectiveReport {
    /// Operation duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// The Figure 4 analysis over one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayAnalysis {
    /// Per-operation verdicts, ordered by start time.
    pub operations: Vec<CollectiveReport>,
    /// The delay threshold used (multiple of the per-kind median).
    pub threshold: f64,
}

impl DelayAnalysis {
    /// Runs the analysis: group communications by `(kind, op_id)`,
    /// compute durations, flag operations slower than
    /// `threshold × median(kind)`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold <= 1.0`.
    pub fn run(trace: &Trace, threshold: f64) -> Self {
        assert!(threshold > 1.0, "threshold must exceed 1.0");
        #[derive(Default)]
        struct Group {
            start: Option<SimTime>,
            end: Option<SimTime>,
            messages: usize,
            // Per destination rank, latest receive time.
            last_recv: BTreeMap<u32, SimTime>,
        }
        let mut groups: BTreeMap<(CollectiveKind, u64), Group> = BTreeMap::new();
        for c in trace.comms() {
            if let Some((kind, id)) = c.collective {
                let g = groups.entry((kind, id)).or_default();
                g.start = Some(match g.start {
                    Some(s) => s.min(c.send_time),
                    None => c.send_time,
                });
                g.end = Some(match g.end {
                    Some(e) => e.max(c.recv_time),
                    None => c.recv_time,
                });
                g.messages += 1;
                let e = g.last_recv.entry(c.dst).or_insert(SimTime::ZERO);
                *e = (*e).max(c.recv_time);
            }
        }

        // Median duration per kind.
        let mut durations: BTreeMap<CollectiveKind, Vec<f64>> = BTreeMap::new();
        for ((kind, _), g) in &groups {
            let d = g.end.expect("has end").saturating_sub(g.start.expect("has start"));
            durations.entry(*kind).or_default().push(d.as_secs_f64());
        }
        let medians: BTreeMap<CollectiveKind, f64> = durations
            .iter()
            .map(|(k, v)| (*k, Summary::from_samples(v.iter().copied()).median()))
            .collect();

        let mut operations: Vec<CollectiveReport> = groups
            .into_iter()
            .map(|((kind, op_id), g)| {
                let start = g.start.expect("has start");
                let end = g.end.expect("has end");
                let d = end.saturating_sub(start).as_secs_f64();
                let median = medians[&kind];
                let slowdown = if median > 0.0 { d / median } else { 1.0 };
                let delayed = slowdown > threshold;
                // A rank is delayed when its completion, measured from
                // the op start, exceeds threshold × median.
                let delayed_ranks = if delayed {
                    g.last_recv
                        .iter()
                        .filter(|(_, &t)| {
                            t.saturating_sub(start).as_secs_f64() > threshold * median
                        })
                        .map(|(&r, _)| r)
                        .collect()
                } else {
                    Vec::new()
                };
                CollectiveReport {
                    kind,
                    op_id,
                    start,
                    end,
                    messages: g.messages,
                    slowdown_vs_median: slowdown,
                    delayed,
                    delayed_ranks,
                }
            })
            .collect();
        operations.sort_by_key(|o| o.start);
        DelayAnalysis {
            operations,
            threshold,
        }
    }

    /// Operations flagged as delayed.
    pub fn delayed(&self) -> impl Iterator<Item = &CollectiveReport> {
        self.operations.iter().filter(|o| o.delayed)
    }

    /// Count of delayed operations of the given kind.
    pub fn delayed_count(&self, kind: CollectiveKind) -> usize {
        self.delayed().filter(|o| o.kind == kind).count()
    }

    /// Total operations of the given kind.
    pub fn total_count(&self, kind: CollectiveKind) -> usize {
        self.operations.iter().filter(|o| o.kind == kind).count()
    }
}

/// Renders an ASCII Gantt chart of the trace's states (Figure 4 in text
/// form): one row per rank, `width` columns spanning the trace duration,
/// each cell showing the dominant state's glyph.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn render_gantt(trace: &Trace, width: usize) -> String {
    assert!(width > 0, "gantt width must be positive");
    let end = trace.end_time().as_secs_f64();
    let mut out = String::new();
    if end == 0.0 {
        return out;
    }
    for rank in 0..trace.num_ranks() {
        let states = trace.rank_states(rank);
        let mut row = vec![' '; width];
        #[allow(clippy::needless_range_loop)] // cell indexes both time and row
        for cell in 0..width {
            let t0 = end * cell as f64 / width as f64;
            let t1 = end * (cell + 1) as f64 / width as f64;
            // Dominant state in [t0, t1): the one overlapping the most.
            let mut best: Option<(f64, StateKind)> = None;
            for s in &states {
                let s0 = s.start.as_secs_f64();
                let s1 = s.end.as_secs_f64();
                let overlap = (s1.min(t1) - s0.max(t0)).max(0.0);
                if overlap > 0.0 && best.is_none_or(|(b, _)| overlap > b) {
                    best = Some((overlap, s.kind));
                }
            }
            if let Some((_, kind)) = best {
                row[cell] = kind.glyph();
            }
        }
        out.push_str(&format!("rank {rank:>3} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CommRecord;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    /// Builds a trace with `n` alltoallv ops of duration 10 µs and one of
    /// 100 µs (the delayed one), across 4 ranks.
    fn trace_with_one_slow_op(n: usize) -> Trace {
        let mut t = Trace::new(4);
        for op in 0..n as u64 {
            let base = us(op * 200);
            for src in 0..4u32 {
                for dst in 0..4u32 {
                    if src == dst {
                        continue;
                    }
                    t.push_comm(CommRecord {
                        src,
                        dst,
                        send_time: base,
                        recv_time: base + us(10),
                        bytes: 1024,
                        collective: Some((CollectiveKind::Alltoallv, op)),
                    });
                }
            }
        }
        // The slow op: everything delayed.
        let base = us(n as u64 * 200);
        for src in 0..4u32 {
            for dst in 0..4u32 {
                if src == dst {
                    continue;
                }
                t.push_comm(CommRecord {
                    src,
                    dst,
                    send_time: base,
                    recv_time: base + us(100),
                    bytes: 1024,
                    collective: Some((CollectiveKind::Alltoallv, n as u64)),
                });
            }
        }
        t
    }

    #[test]
    fn detects_the_delayed_collective() {
        let t = trace_with_one_slow_op(9);
        let a = DelayAnalysis::run(&t, 3.0);
        assert_eq!(a.total_count(CollectiveKind::Alltoallv), 10);
        assert_eq!(a.delayed_count(CollectiveKind::Alltoallv), 1);
        let slow = a.delayed().next().expect("one delayed op");
        assert_eq!(slow.op_id, 9);
        assert!(slow.slowdown_vs_median > 9.0);
        // All four ranks were delayed in this op.
        assert_eq!(slow.delayed_ranks.len(), 4);
    }

    #[test]
    fn partial_delay_flags_only_some_ranks() {
        let mut t = trace_with_one_slow_op(9);
        // Add op 10 where only rank 3's receives are slow.
        let base = us(5_000);
        for src in 0..4u32 {
            for dst in 0..4u32 {
                if src == dst {
                    continue;
                }
                let slow = dst == 3;
                t.push_comm(CommRecord {
                    src,
                    dst,
                    send_time: base,
                    recv_time: base + if slow { us(100) } else { us(10) },
                    bytes: 1024,
                    collective: Some((CollectiveKind::Alltoallv, 10)),
                });
            }
        }
        let a = DelayAnalysis::run(&t, 3.0);
        let op10 = a
            .operations
            .iter()
            .find(|o| o.op_id == 10)
            .expect("op 10 present");
        assert!(op10.delayed);
        assert_eq!(op10.delayed_ranks, vec![3], "only rank 3 is delayed");
    }

    #[test]
    fn uniform_ops_are_not_delayed() {
        let mut t = Trace::new(2);
        for op in 0..5u64 {
            t.push_comm(CommRecord {
                src: 0,
                dst: 1,
                send_time: us(op * 100),
                recv_time: us(op * 100 + 10),
                bytes: 8,
                collective: Some((CollectiveKind::Allreduce, op)),
            });
        }
        let a = DelayAnalysis::run(&t, 2.0);
        assert_eq!(a.delayed().count(), 0);
    }

    #[test]
    fn point_to_point_ignored() {
        let mut t = Trace::new(2);
        t.push_comm(CommRecord {
            src: 0,
            dst: 1,
            send_time: us(0),
            recv_time: us(500),
            bytes: 8,
            collective: None,
        });
        let a = DelayAnalysis::run(&t, 2.0);
        assert!(a.operations.is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold must exceed 1.0")]
    fn bad_threshold_panics() {
        let t = Trace::new(1);
        let _ = DelayAnalysis::run(&t, 1.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut t = Trace::new(2);
        t.push_state(0, us(0), us(50), StateKind::Compute);
        t.push_state(0, us(50), us(100), StateKind::Communicate);
        t.push_state(1, us(0), us(100), StateKind::Wait);
        let g = render_gantt(&t, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[0].contains('c'));
        assert!(lines[1].contains('.'));
    }

    #[test]
    fn gantt_empty_trace() {
        let t = Trace::new(1);
        assert!(render_gantt(&t, 10).is_empty());
    }
}
