//! Parsing Paraver-style `.prv` text back into a [`Trace`].
//!
//! The writer ([`crate::writer::write_prv`]) produces the archive format;
//! this reader closes the loop so traces can be stored, shipped and
//! re-analysed — the workflow the paper runs between Extrae (producer)
//! and Paraver (consumer).

use crate::record::{CollectiveKind, CommRecord, StateKind};
use crate::trace::Trace;
use mb_simcore::time::SimTime;
use std::fmt;

/// Error parsing a `.prv` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrvError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParsePrvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePrvError {}

fn state_from_code(code: u32) -> Option<StateKind> {
    match code {
        0 => Some(StateKind::Idle),
        1 => Some(StateKind::Compute),
        2 => Some(StateKind::Communicate),
        3 => Some(StateKind::Wait),
        _ => None,
    }
}

fn collective_from_name(name: &str) -> Option<CollectiveKind> {
    match name {
        "barrier" => Some(CollectiveKind::Barrier),
        "bcast" => Some(CollectiveKind::Bcast),
        "allreduce" => Some(CollectiveKind::Allreduce),
        "alltoall" => Some(CollectiveKind::Alltoall),
        "all_to_all_v" => Some(CollectiveKind::Alltoallv),
        "gather" => Some(CollectiveKind::Gather),
        _ => None,
    }
}

/// Parses `.prv` text produced by [`crate::writer::write_prv`].
///
/// # Errors
///
/// Returns [`ParsePrvError`] on a malformed header, unknown record type,
/// wrong field count, or unparsable field.
pub fn parse_prv(text: &str) -> Result<Trace, ParsePrvError> {
    let err = |line: usize, message: &str| ParsePrvError {
        line,
        message: message.to_string(),
    };
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| err(1, "empty document"))?;
    let header_body = header
        .strip_prefix("#Paraver")
        .ok_or_else(|| err(1, "missing #Paraver header"))?;
    let ranks: u32 = header_body
        .rsplit(':')
        .next()
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| err(1, "malformed header rank count"))?;
    if ranks == 0 {
        return Err(err(1, "header declares zero ranks"));
    }
    let mut trace = Trace::new(ranks);

    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(':').collect();
        let parse_u64 = |s: &str, what: &str| -> Result<u64, ParsePrvError> {
            s.parse()
                .map_err(|_| err(lineno, &format!("bad {what} field: {s}")))
        };
        match fields[0] {
            "1" => {
                if fields.len() != 5 {
                    return Err(err(lineno, "state record needs 5 fields"));
                }
                let rank = parse_u64(fields[1], "rank")? as u32;
                let start = SimTime::from_nanos(parse_u64(fields[2], "start")?);
                let end = SimTime::from_nanos(parse_u64(fields[3], "end")?);
                let kind = state_from_code(parse_u64(fields[4], "state")? as u32)
                    .ok_or_else(|| err(lineno, "unknown state code"))?;
                trace.push_state(rank, start, end, kind);
            }
            "2" => {
                if fields.len() != 5 {
                    return Err(err(lineno, "event record needs 5 fields"));
                }
                let rank = parse_u64(fields[1], "rank")? as u32;
                let time = SimTime::from_nanos(parse_u64(fields[2], "time")?);
                let value = parse_u64(fields[4], "value")?;
                trace.push_event(rank, time, fields[3].to_string(), value);
            }
            "3" => {
                if fields.len() != 8 {
                    return Err(err(lineno, "comm record needs 8 fields"));
                }
                let src = parse_u64(fields[1], "src")? as u32;
                let send_time = SimTime::from_nanos(parse_u64(fields[2], "send")?);
                let dst = parse_u64(fields[3], "dst")? as u32;
                let recv_time = SimTime::from_nanos(parse_u64(fields[4], "recv")?);
                let bytes = parse_u64(fields[5], "bytes")?;
                let collective = if fields[6] == "p2p" {
                    None
                } else {
                    let kind = collective_from_name(fields[6])
                        .ok_or_else(|| err(lineno, "unknown collective"))?;
                    Some((kind, parse_u64(fields[7], "op id")?))
                };
                trace.push_comm(CommRecord {
                    src,
                    dst,
                    send_time,
                    recv_time,
                    bytes,
                    collective,
                });
            }
            other => {
                return Err(err(lineno, &format!("unknown record type {other}")));
            }
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_prv;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(3);
        t.push_state(
            0,
            SimTime::ZERO,
            SimTime::from_nanos(50),
            StateKind::Compute,
        );
        t.push_state(
            1,
            SimTime::from_nanos(10),
            SimTime::from_nanos(60),
            StateKind::Wait,
        );
        t.push_event(2, SimTime::from_nanos(30), "phase", 7);
        t.push_comm(CommRecord {
            src: 0,
            dst: 2,
            send_time: SimTime::from_nanos(5),
            recv_time: SimTime::from_nanos(45),
            bytes: 4096,
            collective: Some((CollectiveKind::Alltoallv, 11)),
        });
        t.push_comm(CommRecord {
            src: 1,
            dst: 0,
            send_time: SimTime::from_nanos(7),
            recv_time: SimTime::from_nanos(9),
            bytes: 64,
            collective: None,
        });
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample_trace();
        let text = String::from_utf8(write_prv(&original)).expect("ascii");
        let parsed = parse_prv(&text).expect("parses");
        assert_eq!(parsed.num_ranks(), original.num_ranks());
        assert_eq!(parsed.states(), original.states());
        assert_eq!(parsed.events(), original.events());
        assert_eq!(parsed.comms(), original.comms());
    }

    #[test]
    fn analysis_survives_roundtrip() {
        use crate::analysis::DelayAnalysis;
        let original = sample_trace();
        let text = String::from_utf8(write_prv(&original)).expect("ascii");
        let parsed = parse_prv(&text).expect("parses");
        let a1 = DelayAnalysis::run(&original, 2.0);
        let a2 = DelayAnalysis::run(&parsed, 2.0);
        assert_eq!(a1, a2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_prv("").is_err());
        assert!(parse_prv("not a header\n").is_err());
        let e = parse_prv("#Paraver (sim):100:2\n9:0:0\n").expect_err("bad record");
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown record type"));
        assert!(parse_prv("#Paraver (sim):100:0\n").is_err());
    }

    #[test]
    fn rejects_malformed_fields() {
        let bad_state = "#Paraver (sim):10:1\n1:0:0:x:1\n";
        let e = parse_prv(bad_state).expect_err("bad end field");
        assert!(e.message.contains("bad end"));
        let short_comm = "#Paraver (sim):10:2\n3:0:1:1\n";
        assert!(parse_prv(short_comm).is_err());
    }
}
