//! Trace record types, mirroring the Paraver data model.

use mb_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a rank is doing during a state interval. Paraver colours its
/// timeline by exactly this kind of classification; Figure 4's orange
/// regions are the communication states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StateKind {
    /// Useful computation.
    Compute,
    /// Inside a communication call making progress.
    Communicate,
    /// Blocked waiting for a partner or the fabric.
    Wait,
    /// Nothing scheduled.
    Idle,
}

impl StateKind {
    /// One-character code used in ASCII Gantt renders.
    pub fn glyph(self) -> char {
        match self {
            StateKind::Compute => '#',
            StateKind::Communicate => 'c',
            StateKind::Wait => '.',
            StateKind::Idle => ' ',
        }
    }
}

impl fmt::Display for StateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StateKind::Compute => "compute",
            StateKind::Communicate => "communicate",
            StateKind::Wait => "wait",
            StateKind::Idle => "idle",
        };
        f.write_str(s)
    }
}

/// Collective-operation kinds (the subset the paper's applications use).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum CollectiveKind {
    /// Barrier synchronisation.
    Barrier,
    /// One-to-all broadcast.
    Bcast,
    /// All-reduce.
    Allreduce,
    /// Regular all-to-all.
    Alltoall,
    /// Vector all-to-all — BigDFT's dominant pattern and the subject of
    /// Figure 4.
    Alltoallv,
    /// Gather to a root.
    Gather,
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Bcast => "bcast",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Alltoall => "alltoall",
            CollectiveKind::Alltoallv => "all_to_all_v",
            CollectiveKind::Gather => "gather",
        };
        f.write_str(s)
    }
}

/// A per-rank state interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateRecord {
    /// Rank the interval belongs to.
    pub rank: u32,
    /// Interval start.
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
    /// Classification.
    pub kind: StateKind,
}

impl StateRecord {
    /// Interval duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// A point event on one rank (counter sample, phase marker, …).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Rank the event occurred on.
    pub rank: u32,
    /// Timestamp.
    pub time: SimTime,
    /// Event type label.
    pub label: String,
    /// Event value.
    pub value: u64,
}

/// One logical message: matched send and receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommRecord {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// When the send was posted.
    pub send_time: SimTime,
    /// When the receive completed.
    pub recv_time: SimTime,
    /// Payload size.
    pub bytes: u64,
    /// If this message belongs to a collective: `(kind, op id)`. All
    /// messages of one collective invocation share the id.
    pub collective: Option<(CollectiveKind, u64)>,
}

impl CommRecord {
    /// End-to-end latency of the message.
    pub fn latency(&self) -> SimTime {
        self.recv_time.saturating_sub(self.send_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_duration() {
        let s = StateRecord {
            rank: 0,
            start: SimTime::from_micros(10),
            end: SimTime::from_micros(25),
            kind: StateKind::Compute,
        };
        assert_eq!(s.duration(), SimTime::from_micros(15));
    }

    #[test]
    fn comm_latency() {
        let c = CommRecord {
            src: 0,
            dst: 1,
            send_time: SimTime::from_nanos(100),
            recv_time: SimTime::from_nanos(350),
            bytes: 1024,
            collective: Some((CollectiveKind::Alltoallv, 7)),
        };
        assert_eq!(c.latency(), SimTime::from_nanos(250));
    }

    #[test]
    fn display_names() {
        assert_eq!(CollectiveKind::Alltoallv.to_string(), "all_to_all_v");
        assert_eq!(StateKind::Communicate.to_string(), "communicate");
        assert_eq!(StateKind::Compute.glyph(), '#');
    }
}
