//! # mb-energy — power and energy accounting
//!
//! The paper's Table II compares the Snowball and the Xeon not just on
//! speed but on **energy to solution**, using nameplate power figures:
//! "The results assume a full 2.5 W power consumption for the Snowball
//! board, while only 95 W of power (the TDP of the Xeon) are accounted
//! for" (§III.C). This crate reproduces exactly that accounting:
//!
//! * [`Power`] / [`Energy`] — watt and joule newtypes with the obvious
//!   arithmetic;
//! * [`PowerModel`] — nameplate models of the paper's platforms;
//! * [`energy_ratio`] — Table II's *Energy Ratio* column: the energy the
//!   embedded platform needs relative to the server platform;
//! * [`gflops_per_watt`] and [`required_gflops_per_watt`] — the
//!   Green500-style metrics of the introduction (an exaflop in 20 MW
//!   needs 50 GFLOPS/W).
//!
//! # Examples
//!
//! ```
//! use mb_energy::{energy_ratio, PowerModel};
//!
//! // Table II, LINPACK row: Snowball is 38.7× slower but 38× cheaper in
//! // power, so the energy ratio is ≈ 1.0.
//! let r = energy_ratio(
//!     38.7,
//!     PowerModel::snowball().nameplate(),
//!     PowerModel::xeon_x5550().nameplate(),
//! );
//! assert!((r - 1.02).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mb_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// Electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Creates a power from watts.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or non-finite.
    pub fn from_watts(watts: f64) -> Self {
        assert!(watts.is_finite() && watts >= 0.0, "power must be >= 0");
        Power(watts)
    }

    /// The value in watts.
    pub fn watts(self) -> f64 {
        self.0
    }

    /// Energy dissipated over a duration.
    pub fn over(self, t: SimTime) -> Energy {
        Energy::from_joules(self.0 * t.as_secs_f64())
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.0)
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Creates an energy from joules.
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or non-finite.
    pub fn from_joules(joules: f64) -> Self {
        assert!(joules.is_finite() && joules >= 0.0, "energy must be >= 0");
        Energy(joules)
    }

    /// The value in joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Ratio against another energy.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: Energy) -> f64 {
        assert!(other.0 > 0.0, "cannot take a ratio against zero energy");
        self.0 / other.0
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.2} kJ", self.0 / 1000.0)
        } else {
            write!(f, "{:.2} J", self.0)
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

/// A platform's nameplate power model, after §III.C of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    name: String,
    nameplate: Power,
}

impl PowerModel {
    /// Creates a model.
    pub fn new(name: impl Into<String>, nameplate: Power) -> Self {
        PowerModel {
            name: name.into(),
            nameplate,
        }
    }

    /// The Snowball board: the paper assumes the full 2.5 W USB power
    /// budget — deliberately conservative (unfavourable to ARM).
    pub fn snowball() -> Self {
        PowerModel::new("Snowball (A9500 board)", Power::from_watts(2.5))
    }

    /// The Xeon X5550: its 95 W TDP, with the rest of the server
    /// (DRAM, board, PSU) deliberately **not** accounted — conservative
    /// in the x86 platform's favour.
    pub fn xeon_x5550() -> Self {
        PowerModel::new("Xeon X5550 (TDP only)", Power::from_watts(95.0))
    }

    /// A Tibidabo Tegra2 node including its 1 GbE NIC (the paper gives
    /// no number; ~8.5 W is BSC's published per-node figure).
    pub fn tegra2_node() -> Self {
        PowerModel::new("Tegra2 node (Tibidabo)", Power::from_watts(8.5))
    }

    /// The prospective Exynos 5 node of §VI.A: "a peak performance of
    /// about a 100 GFLOPS for a power consumption of 5 Watts".
    pub fn exynos5_node() -> Self {
        PowerModel::new("Exynos 5 Dual node", Power::from_watts(5.0))
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nameplate power.
    pub fn nameplate(&self) -> Power {
        self.nameplate
    }

    /// Energy to run for `t` at nameplate power.
    pub fn energy_over(&self, t: SimTime) -> Energy {
        self.nameplate.over(t)
    }
}

/// Energy surcharge of the resilience machinery (`mb-mpi` retries and
/// timeouts) on a faulted run.
///
/// Time degradation is already charged through the longer makespan at
/// nameplate power; what that misses is the *extra wire activity*: every
/// retransmission re-serialises the message through the NIC and switch
/// port, and every exhausted retry budget burns its whole backoff window
/// with the link electrically active but useless. This model charges a
/// fixed energy per event, derived from the Tibidabo GbE numbers — it
/// deliberately mirrors the paper's nameplate style of accounting
/// (§III.C) rather than attempting per-byte microbilling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetransmissionModel {
    /// Energy charged per retransmitted message.
    pub per_retry: Energy,
    /// Energy charged per message abandoned after exhausting its retry
    /// budget (the full backoff ladder was burnt).
    pub per_timeout: Energy,
}

impl RetransmissionModel {
    /// The Tibidabo commodity-GbE figures: a retransmitted HPC message
    /// (~64 KiB) occupies the wire for ~0.52 ms; NIC plus switch port
    /// draw ~2.3 W while serialising, giving ~1.2 mJ per retry. An
    /// exhausted retry budget burns the whole 8-attempt exponential
    /// backoff ladder, ~9.6 mJ.
    pub fn tibidabo_gbe() -> Self {
        RetransmissionModel {
            per_retry: Energy::from_joules(1.2e-3),
            per_timeout: Energy::from_joules(9.6e-3),
        }
    }

    /// Total surcharge for `retries` retransmissions and `timeouts`
    /// exhausted budgets.
    pub fn surcharge(&self, retries: u64, timeouts: u64) -> Energy {
        Energy::from_joules(
            self.per_retry.joules() * retries as f64
                + self.per_timeout.joules() * timeouts as f64,
        )
    }
}

/// Table II's *Energy Ratio*: given a performance ratio
/// `slower_time / faster_time` (e.g. Snowball time over Xeon time) and
/// the two nameplate powers, how much energy does the slow platform use
/// relative to the fast one?
///
/// `energy_ratio = perf_ratio × P_slow / P_fast`
///
/// # Panics
///
/// Panics if `perf_ratio` is not positive or `fast_power` is zero.
pub fn energy_ratio(perf_ratio: f64, slow_power: Power, fast_power: Power) -> f64 {
    assert!(perf_ratio > 0.0, "performance ratio must be positive");
    assert!(fast_power.watts() > 0.0, "reference power must be non-zero");
    perf_ratio * slow_power.watts() / fast_power.watts()
}

/// Green500-style efficiency: GFLOPS per watt.
///
/// # Panics
///
/// Panics if `power` is zero.
pub fn gflops_per_watt(gflops: f64, power: Power) -> f64 {
    assert!(power.watts() > 0.0, "power must be non-zero");
    gflops / power.watts()
}

/// The introduction's exascale arithmetic: the efficiency (GFLOPS/W)
/// needed to reach `target_gflops` within `budget`.
///
/// # Panics
///
/// Panics if the budget is zero.
///
/// # Examples
///
/// ```
/// use mb_energy::{required_gflops_per_watt, Power};
/// // An exaflop (1e9 GFLOPS) in 20 MW needs 50 GFLOPS/W (§I).
/// let need = required_gflops_per_watt(1e9, Power::from_watts(20e6));
/// assert!((need - 50.0).abs() < 1e-9);
/// ```
pub fn required_gflops_per_watt(target_gflops: f64, budget: Power) -> f64 {
    assert!(budget.watts() > 0.0, "power budget must be non-zero");
    target_gflops / budget.watts()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_energy_arithmetic() {
        let p = Power::from_watts(2.5);
        let e = p.over(SimTime::from_secs(100));
        assert!((e.joules() - 250.0).abs() < 1e-9);
        let sum = e + Energy::from_joules(50.0);
        assert!((sum.joules() - 300.0).abs() < 1e-9);
        assert!((Power::from_watts(1.0) + Power::from_watts(2.0)).watts() == 3.0);
        let mut acc = Energy::default();
        acc += e;
        assert_eq!(acc, e);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Power::from_watts(95.0).to_string(), "95.00 W");
        assert_eq!(Energy::from_joules(2500.0).to_string(), "2.50 kJ");
        assert_eq!(Energy::from_joules(42.0).to_string(), "42.00 J");
    }

    #[test]
    fn table2_energy_ratios_reproduce() {
        // (benchmark, perf ratio, paper's energy ratio)
        let rows = [
            ("LINPACK", 38.7, 1.0),
            ("CoreMark", 7.1, 0.2),
            ("StockFish", 20.2, 0.5),
            ("SPECFEM3D", 7.9, 0.2),
            ("BigDFT", 23.2, 0.6),
        ];
        let snow = PowerModel::snowball().nameplate();
        let xeon = PowerModel::xeon_x5550().nameplate();
        for (name, perf, expect) in rows {
            let r = energy_ratio(perf, snow, xeon);
            assert!(
                (r - expect).abs() < 0.06,
                "{name}: computed {r:.3}, paper {expect}"
            );
        }
    }

    #[test]
    fn energy_to_solution_comparison() {
        // SPECFEM3D row: 186.8 s on Snowball vs 23.5 s on Xeon.
        let e_snow = PowerModel::snowball().energy_over(SimTime::from_secs_f64(186.8));
        let e_xeon = PowerModel::xeon_x5550().energy_over(SimTime::from_secs_f64(23.5));
        let ratio = e_snow.ratio(e_xeon);
        assert!((ratio - 0.21).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn exascale_requirement() {
        let need = required_gflops_per_watt(1e9, Power::from_watts(20e6));
        assert!((need - 50.0).abs() < 1e-9);
        // Today's (2012) best ≈ 2 GFLOPS/W → a factor of 25 improvement
        // is required, as the paper states.
        assert!((need / 2.0 - 25.0).abs() < 1e-9);
    }

    #[test]
    fn exynos_perspective() {
        // §VI.A: 100 GFLOPS at 5 W = 20 GFLOPS/W peak.
        let eff = gflops_per_watt(100.0, PowerModel::exynos5_node().nameplate());
        assert!((eff - 20.0).abs() < 1e-9);
    }

    #[test]
    fn retransmission_surcharge_scales_with_counters() {
        let m = RetransmissionModel::tibidabo_gbe();
        assert_eq!(m.surcharge(0, 0), Energy::from_joules(0.0));
        let light = m.surcharge(100, 0);
        assert!((light.joules() - 0.12).abs() < 1e-12);
        let heavy = m.surcharge(100, 10);
        assert!(heavy > light, "timeouts must add energy");
        assert!((heavy.joules() - (0.12 + 0.096)).abs() < 1e-12);
        // A timeout (a whole backoff ladder) costs more than one retry.
        assert!(m.per_timeout > m.per_retry);
    }

    #[test]
    #[should_panic(expected = "power must be >= 0")]
    fn negative_power_panics() {
        let _ = Power::from_watts(-1.0);
    }

    #[test]
    #[should_panic(expected = "cannot take a ratio against zero energy")]
    fn zero_ratio_panics() {
        let _ = Energy::from_joules(1.0).ratio(Energy::default());
    }
}
