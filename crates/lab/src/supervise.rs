//! The shard-family supervisor: spawn N `mb-lab run` workers and
//! babysit the family to completion.
//!
//! The paper's campaigns ran for days on a 128-node cluster where
//! worker death was routine; a family of hand-launched shard processes
//! with no babysitter stalls the whole campaign the first time one of
//! them dies. The supervisor closes that gap with three mechanisms,
//! all deterministic and clock-free in their *decisions*:
//!
//! * **Restart on crash.** A worker that exits abnormally (including
//!   by signal) is respawned and resumes from its journal — the
//!   journal is the only state that matters, so a restart costs at
//!   most the in-flight slot. Respawns are spaced by bounded
//!   exponential backoff whose jitter is a pure function of
//!   `(seed, shard, attempt)` ([`backoff_delay_ms`]) — given the same
//!   `MB_SEED` the schedule replays exactly.
//! * **Hang detection.** Progress is journal byte growth between
//!   polls, not wall clock: a worker whose journal has not grown for
//!   [`SupervisePolicy::hang_polls`] consecutive polls is killed and
//!   restarted. The only temporal knob is the poll interval itself;
//!   no `Instant`/`SystemTime` enters any decision.
//! * **Poison-slot quarantine.** A slot that crashes its worker
//!   [`SupervisePolicy::poison_threshold`] times in a row (worker exit
//!   code 4, failing slot parsed from the driver's stable
//!   `slot <n> failed:` stderr line) is fenced: recorded in
//!   `quarantine.txt`, added to every subsequent worker's
//!   `--skip-slots`, and the campaign degrades to "complete minus
//!   quarantined" instead of wedging or failing family-wide.
//!
//! On completion every worker journal is exported as a transport
//! segment and ingested into a collector replica (one segment is
//! deliberately re-ingested to exercise idempotency on every run),
//! the replicas are merged — [`crate::journal::merge_allowing`] when
//! slots are quarantined — and, for a fully measured campaign with a
//! pinned digest, the merged digest is checked against the pin. The
//! whole run is summarized in a machine-readable [`SuperviseReport`]
//! (`report.json` in the family directory).

use crate::campaign::{self, Campaign};
use crate::driver::Shard;
use crate::journal::{self, Journal, JournalError};
use crate::transport::{self, TransportError};
use montblanc::report::CampaignAccounting;
use std::fmt;
use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// Knobs for one supervised family, beyond the campaign itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisePolicy {
    /// Worker (shard) count.
    pub shards: u32,
    /// Poll interval — the supervisor's only temporal knob. Every
    /// other threshold below counts polls, not milliseconds.
    pub poll_ms: u64,
    /// Consecutive polls without journal byte growth before a running
    /// worker is declared hung and killed.
    pub hang_polls: u32,
    /// Consecutive same-slot worker crashes before the slot is
    /// quarantined.
    pub poison_threshold: u32,
    /// Crash-restarts per shard (since its last quarantine) before the
    /// family is declared failed.
    pub max_restarts: u32,
    /// Backoff before restart attempt `k` is nominally
    /// `backoff_base_ms << k`…
    pub backoff_base_ms: u64,
    /// …clamped to this cap (jitter can halve it, never exceed it).
    pub backoff_cap_ms: u64,
    /// Total poll budget for the family — the configurable bound that
    /// keeps a pathological family from spinning forever.
    pub max_polls: u64,
    /// Seed for the backoff jitter and the chaos-kill schedule
    /// (`MB_SEED` in the CLI).
    pub seed: u64,
    /// Forwarded to workers as `--task-delay-ms` (tests widen the
    /// crash window with it).
    pub task_delay_ms: u64,
    /// Chaos harness: SIGKILL this many workers at seeded points of
    /// the poll schedule. Zero in normal operation.
    pub chaos_kills: u32,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy {
            shards: 2,
            poll_ms: 25,
            hang_polls: 2400,
            poison_threshold: 3,
            max_restarts: 16,
            backoff_base_ms: 25,
            backoff_cap_ms: 2000,
            max_polls: 2_000_000,
            seed: 0x5EED,
            task_delay_ms: 0,
            chaos_kills: 0,
        }
    }
}

/// Everything that can end a supervised family abnormally.
#[derive(Debug)]
pub enum SuperviseError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Journal verification or merge failure.
    Journal(JournalError),
    /// Segment export/ingest failure.
    Transport(TransportError),
    /// The campaign name is not in the registry.
    UnknownCampaign(String),
    /// A worker died with a non-retryable exit code (journal
    /// corruption or environment misconfiguration): restarting would
    /// reproduce it, so the family aborts.
    WorkerUnretryable {
        /// The shard whose worker died.
        shard: u32,
        /// The worker's exit code.
        code: u8,
        /// Last stderr line, for the postmortem.
        detail: String,
    },
    /// A shard burned through its crash-restart budget.
    RestartsExhausted {
        /// The shard that kept dying.
        shard: u32,
        /// Crash count since its last quarantine.
        crashes: u32,
    },
    /// The family-wide poll budget ran out.
    PollBudgetExhausted {
        /// The configured budget.
        max_polls: u64,
    },
    /// The merged digest disagrees with the campaign's pin.
    DigestMismatch {
        /// Digest of the merged, fully measured campaign.
        got: u64,
        /// The pinned digest.
        pinned: u64,
    },
    /// The family directory is already owned by a live supervisor —
    /// two supervisors double-spawning workers against the same
    /// journals is exactly the corruption the lockfile exists to stop.
    Lock(crate::lock::LockError),
    /// The family was cancelled via [`supervise_cancellable`]'s flag;
    /// workers were killed, journals are intact, and a later run may
    /// resume from them.
    Cancelled,
}

impl fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperviseError::Io(e) => write!(f, "supervise I/O error: {e}"),
            SuperviseError::Journal(e) => write!(f, "{e}"),
            SuperviseError::Transport(e) => write!(f, "{e}"),
            SuperviseError::UnknownCampaign(name) => {
                write!(f, "unknown campaign '{name}' (try `mb-lab list`)")
            }
            SuperviseError::WorkerUnretryable {
                shard,
                code,
                detail,
            } => write!(
                f,
                "shard {shard} worker died unretryably (exit {code}): {detail}"
            ),
            SuperviseError::RestartsExhausted { shard, crashes } => {
                write!(f, "shard {shard} exhausted its restart budget ({crashes} crashes)")
            }
            SuperviseError::PollBudgetExhausted { max_polls } => {
                write!(f, "family exceeded its poll budget of {max_polls} polls")
            }
            SuperviseError::DigestMismatch { got, pinned } => write!(
                f,
                "merged digest mismatch: got {got:#018x}, pinned {pinned:#018x}"
            ),
            SuperviseError::Lock(e) => write!(f, "{e}"),
            SuperviseError::Cancelled => {
                write!(f, "family cancelled; journals intact, resumable")
            }
        }
    }
}

impl std::error::Error for SuperviseError {}

impl From<std::io::Error> for SuperviseError {
    fn from(e: std::io::Error) -> Self {
        SuperviseError::Io(e)
    }
}

impl From<JournalError> for SuperviseError {
    fn from(e: JournalError) -> Self {
        SuperviseError::Journal(e)
    }
}

impl From<TransportError> for SuperviseError {
    fn from(e: TransportError) -> Self {
        SuperviseError::Transport(e)
    }
}

impl SuperviseError {
    /// Process exit code for this error, following the workspace
    /// contract (see [`mb_simcore::error::exit_code`]): a worker's
    /// non-retryable code is forwarded verbatim, structural failures
    /// delegate to their layer, and the never-converged states
    /// (restarts or polls exhausted, digest mismatch) are the generic
    /// failure.
    pub fn exit_code(&self) -> u8 {
        use mb_simcore::error::exit_code;
        match self {
            SuperviseError::Io(_) => exit_code::ENV_MISCONFIG,
            SuperviseError::Journal(e) => e.exit_code(),
            SuperviseError::Transport(e) => e.exit_code(),
            SuperviseError::UnknownCampaign(_) => exit_code::ENV_MISCONFIG,
            SuperviseError::WorkerUnretryable { code, .. } => *code,
            SuperviseError::RestartsExhausted { .. }
            | SuperviseError::PollBudgetExhausted { .. }
            | SuperviseError::DigestMismatch { .. }
            | SuperviseError::Cancelled => exit_code::FAILURE,
            SuperviseError::Lock(e) => e.exit_code(),
        }
    }
}

impl From<crate::lock::LockError> for SuperviseError {
    fn from(e: crate::lock::LockError) -> Self {
        SuperviseError::Lock(e)
    }
}

/// SplitMix64 step — same generator the rest of the workspace seeds
/// with, reused here for backoff jitter and the chaos schedule.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state = z ^ (z >> 31);
}

const BACKOFF_SALT: u64 = 0xBAC0_FF5A_17D0_0D1E;
const CHAOS_SALT: u64 = 0xC4A0_5C4E_D01E_5EED;

/// Backoff before restart attempt `attempt` (0-based) of `shard`, in
/// milliseconds: nominally `base << attempt` clamped to `cap`, jittered
/// into `[nominal/2, nominal]` by a pure SplitMix64 draw over
/// `(seed, shard, attempt)`. Deterministic — the same inputs always
/// produce the same delay — and bounded by `cap` for every input.
pub fn backoff_delay_ms(seed: u64, shard: u32, attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
    let shift = attempt.min(32);
    let nominal = base_ms
        .saturating_mul(1u64 << shift)
        .min(cap_ms);
    let mut state = seed ^ BACKOFF_SALT ^ (u64::from(shard) << 32) ^ u64::from(attempt);
    splitmix64(&mut state);
    // Jitter scales the delay into [nominal/2, nominal]: desynchronizes
    // a thundering herd of restarts without ever exceeding the cap.
    let half = nominal / 2;
    half + (state % (nominal - half + 1))
}

/// One fenced slot: the quarantine record the ROADMAP's "complete
/// minus quarantined" accounting is built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// The fenced slot.
    pub slot: usize,
    /// The shard whose worker it kept crashing.
    pub shard: u32,
    /// Consecutive crashes that triggered the fence.
    pub crashes: u32,
}

/// Per-shard tally for the [`SuperviseReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: u32,
    /// Worker spawns (1 for an uneventful shard).
    pub attempts: u32,
    /// Abnormal exits, including signal kills.
    pub crashes: u32,
    /// Stalls killed by the hang detector.
    pub hangs: u32,
    /// Backoff delays actually scheduled, in order.
    pub backoff_ms: Vec<u64>,
    /// Records in the shard's final journal.
    pub records: usize,
}

/// Machine-readable outcome of one supervised family.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperviseReport {
    /// Campaign name.
    pub campaign: String,
    /// Worker count.
    pub shards: u32,
    /// Polls the family took to converge.
    pub polls: u64,
    /// Chaos kills actually delivered.
    pub chaos_kills: u32,
    /// Per-shard tallies.
    pub per_shard: Vec<ShardReport>,
    /// Fenced slots, ascending by slot.
    pub quarantined: Vec<QuarantineRecord>,
    /// Completion accounting over the merged journal.
    pub accounting: CampaignAccounting,
    /// Records appended across all segment ingests.
    pub transport_appended: usize,
    /// Records verified as duplicates across all ingests (at least one
    /// segment is always re-ingested as an idempotency self-check).
    pub transport_duplicates: usize,
    /// Digest of the merged stream — only for a fully measured
    /// campaign (no quarantined slots).
    pub digest: Option<u64>,
    /// Whether the digest was checked against a registry pin.
    pub digest_checked: bool,
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl SuperviseReport {
    /// Renders the report as a JSON document (the workspace's `serde`
    /// is a marker-trait stand-in, so this is hand-rolled like every
    /// other emitter in the repo).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"campaign\": \"{}\",\n", json_escape(&self.campaign)));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"polls\": {},\n", self.polls));
        out.push_str(&format!("  \"chaos_kills\": {},\n", self.chaos_kills));
        out.push_str("  \"per_shard\": [\n");
        for (i, s) in self.per_shard.iter().enumerate() {
            let backoff: Vec<String> = s.backoff_ms.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "    {{\"shard\": {}, \"attempts\": {}, \"crashes\": {}, \"hangs\": {}, \
                 \"backoff_ms\": [{}], \"records\": {}}}{}\n",
                s.shard,
                s.attempts,
                s.crashes,
                s.hangs,
                backoff.join(", "),
                s.records,
                if i + 1 < self.per_shard.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"quarantined\": [\n");
        for (i, q) in self.quarantined.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"slot\": {}, \"shard\": {}, \"crashes\": {}}}{}\n",
                q.slot,
                q.shard,
                q.crashes,
                if i + 1 < self.quarantined.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"accounting\": {{\"total\": {}, \"completed\": {}, \"quarantined\": {:?}, \
             \"outstanding\": {}}},\n",
            self.accounting.total,
            self.accounting.completed,
            self.accounting.quarantined,
            self.accounting.outstanding()
        ));
        out.push_str(&format!("  \"transport_appended\": {},\n", self.transport_appended));
        out.push_str(&format!("  \"transport_duplicates\": {},\n", self.transport_duplicates));
        match self.digest {
            Some(d) => out.push_str(&format!("  \"digest\": \"{d:#018x}\",\n")),
            None => out.push_str("  \"digest\": null,\n"),
        }
        out.push_str(&format!("  \"digest_checked\": {}\n", self.digest_checked));
        out.push_str("}\n");
        out
    }
}

/// Supervisor-side view of one worker.
struct WorkerState {
    shard: u32,
    child: Option<Child>,
    /// Worker spawns so far.
    attempts: u32,
    /// Abnormal exits (including hang kills) since the last quarantine
    /// — the backoff attempt index and the restart-budget meter.
    crashes_since_fence: u32,
    crashes_total: u32,
    hangs: u32,
    backoff_ms: Vec<u64>,
    /// Earliest poll at which the next spawn may happen.
    ready_at_poll: u64,
    /// Journal byte length at the last poll, for the hang detector.
    last_journal_len: u64,
    stale_polls: u32,
    /// Slot that caused the last exit-4 death, and its streak.
    last_failed_slot: Option<usize>,
    fail_streak: u32,
    done: bool,
}

/// The slots shard `i` of `n` owns under the modulo partition.
fn owned_slots(tasks: usize, shard: u32, count: u32) -> Vec<usize> {
    let s = Shard {
        index: shard,
        count,
    };
    (0..tasks).filter(|&i| s.owns(i)).collect()
}

fn worker_dir(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("worker{shard}"))
}

fn worker_journal(dir: &Path, shard: u32) -> PathBuf {
    worker_dir(dir, shard).join("shard.journal")
}

fn quarantine_path(dir: &Path) -> PathBuf {
    dir.join("quarantine.txt")
}

/// Loads the persisted quarantine set (one `slot shard crashes` line
/// per fenced slot) so a restarted *supervisor* keeps earlier fences.
fn load_quarantine(dir: &Path) -> Result<Vec<QuarantineRecord>, SuperviseError> {
    let path = quarantine_path(dir);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let mut records = Vec::new();
    for line in fs::read_to_string(&path)?.lines() {
        let mut fields = line.split_whitespace();
        let (Some(slot), Some(shard), Some(crashes)) =
            (fields.next(), fields.next(), fields.next())
        else {
            continue;
        };
        if let (Ok(slot), Ok(shard), Ok(crashes)) =
            (slot.parse(), shard.parse(), crashes.parse())
        {
            records.push(QuarantineRecord {
                slot,
                shard,
                crashes,
            });
        }
    }
    Ok(records)
}

fn persist_quarantine(dir: &Path, records: &[QuarantineRecord]) -> Result<(), SuperviseError> {
    let mut text = String::new();
    for q in records {
        text.push_str(&format!("{} {} {}\n", q.slot, q.shard, q.crashes));
    }
    fs::write(quarantine_path(dir), text)?;
    Ok(())
}

/// Spawns (or respawns) the worker for `shard`, resuming from its
/// journal and skipping every quarantined slot.
fn spawn_worker(
    worker_exe: &Path,
    campaign_name: &str,
    dir: &Path,
    shard: u32,
    policy: &SupervisePolicy,
    skip: &[usize],
) -> Result<Child, SuperviseError> {
    let wdir = worker_dir(dir, shard);
    fs::create_dir_all(&wdir)?;
    let stderr = fs::File::create(wdir.join("attempt.stderr"))?;
    let stdout = fs::File::create(wdir.join("attempt.stdout"))?;
    let mut cmd = Command::new(worker_exe);
    cmd.arg("run")
        .arg(campaign_name)
        .arg("--journal")
        .arg(worker_journal(dir, shard))
        .arg("--shard")
        .arg(format!("{shard}/{}", policy.shards))
        // The supervisor is the source of truth for the partition and
        // the bound; stale environment must not leak into workers.
        .env_remove("MB_SHARD")
        .env_remove("MB_MAX_SLOTS")
        .stdin(Stdio::null())
        .stdout(Stdio::from(stdout))
        .stderr(Stdio::from(stderr));
    if policy.task_delay_ms > 0 {
        cmd.arg("--task-delay-ms").arg(policy.task_delay_ms.to_string());
    }
    if !skip.is_empty() {
        let list: Vec<String> = skip.iter().map(usize::to_string).collect();
        cmd.arg("--skip-slots").arg(list.join(","));
    }
    Ok(cmd.spawn()?)
}

/// Last stderr line of the worker's most recent attempt.
fn last_stderr_line(dir: &Path, shard: u32) -> String {
    let path = worker_dir(dir, shard).join("attempt.stderr");
    let mut text = String::new();
    if let Ok(mut f) = fs::File::open(path) {
        let _ = f.read_to_string(&mut text);
    }
    text.lines().last().unwrap_or("<no stderr>").to_string()
}

/// Extracts the failing slot from the driver's stable
/// `mb-lab: slot <n> failed: …` stderr line.
fn parse_failed_slot(stderr_line: &str) -> Option<usize> {
    let rest = stderr_line.strip_prefix("mb-lab: slot ")?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Whether `shard`'s journal accounts for every owned slot (measured
/// or quarantined). Absent journal means nothing is accounted for.
fn shard_complete(
    dir: &Path,
    shard: u32,
    policy: &SupervisePolicy,
    tasks: usize,
    quarantined: &[usize],
) -> Result<bool, SuperviseError> {
    let path = worker_journal(dir, shard);
    if !path.exists() {
        return Ok(owned_slots(tasks, shard, policy.shards).is_empty());
    }
    let journal = Journal::load(&path)?;
    let have = journal.completed_slots();
    Ok(owned_slots(tasks, shard, policy.shards)
        .iter()
        .all(|slot| have.contains(slot) || quarantined.contains(slot)))
}

/// Seeded chaos schedule: `(poll, victim)` pairs at which the
/// supervisor SIGKILLs a live worker, spaced a few polls apart so the
/// kills land while slots are genuinely in flight.
fn chaos_schedule(policy: &SupervisePolicy) -> Vec<(u64, u32)> {
    let mut state = policy.seed ^ CHAOS_SALT;
    let mut schedule = Vec::new();
    let mut poll = 0u64;
    for _ in 0..policy.chaos_kills {
        splitmix64(&mut state);
        poll += 2 + state % 6;
        splitmix64(&mut state);
        schedule.push((poll, (state % u64::from(policy.shards)) as u32));
    }
    schedule
}

/// Runs a supervised shard family of `campaign_name` under `dir`,
/// spawning `worker_exe` (the `mb-lab` binary itself) as the workers.
/// See the module docs for the machinery; returns the
/// [`SuperviseReport`] that was also written to `dir/report.json`.
///
/// # Errors
///
/// Any [`SuperviseError`]; the family directory is left intact for
/// postmortem (worker journals, per-attempt stderr, quarantine file).
pub fn supervise(
    campaign_name: &str,
    dir: &Path,
    worker_exe: &Path,
    policy: &SupervisePolicy,
) -> Result<SuperviseReport, SuperviseError> {
    supervise_cancellable(campaign_name, dir, worker_exe, policy, None)
}

/// [`supervise`] with a cooperative cancellation flag: when `cancel`
/// flips to `true` the supervisor kills every live worker at the next
/// poll and returns [`SuperviseError::Cancelled`]. Journals stay
/// intact, so a later run (or a restarted server) resumes the family
/// from where the cancellation landed. The serve layer owns the flag;
/// passing `None` is exactly [`supervise`].
///
/// # Errors
///
/// As [`supervise`], plus [`SuperviseError::Cancelled`].
pub fn supervise_cancellable(
    campaign_name: &str,
    dir: &Path,
    worker_exe: &Path,
    policy: &SupervisePolicy,
    cancel: Option<&std::sync::atomic::AtomicBool>,
) -> Result<SuperviseReport, SuperviseError> {
    let campaign: Box<dyn Campaign> = campaign::find(campaign_name)
        .ok_or_else(|| SuperviseError::UnknownCampaign(campaign_name.to_string()))?;
    let tasks = campaign.task_labels().len();
    fs::create_dir_all(dir)?;
    // Sole ownership of the family dir for the whole run: two
    // supervisors would double-spawn workers against the same
    // journals. Held until this function returns.
    let _lock = crate::lock::PathLock::acquire(&dir.join("supervise.lock"))?;

    let mut quarantine = load_quarantine(dir)?;
    let mut workers: Vec<WorkerState> = (0..policy.shards)
        .map(|shard| WorkerState {
            shard,
            child: None,
            attempts: 0,
            crashes_since_fence: 0,
            crashes_total: 0,
            hangs: 0,
            backoff_ms: Vec::new(),
            ready_at_poll: 0,
            last_journal_len: 0,
            stale_polls: 0,
            last_failed_slot: None,
            fail_streak: 0,
            done: false,
        })
        .collect();

    let mut chaos = chaos_schedule(policy);
    chaos.reverse(); // pop() delivers in schedule order
    let mut chaos_delivered = 0u32;

    let mut poll = 0u64;
    let result = loop {
        if cancel.is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed)) {
            break Err(SuperviseError::Cancelled);
        }
        if poll >= policy.max_polls {
            break Err(SuperviseError::PollBudgetExhausted {
                max_polls: policy.max_polls,
            });
        }
        let quarantined_slots: Vec<usize> = quarantine.iter().map(|q| q.slot).collect();

        // Deliver due chaos kills before inspecting children, so the
        // kill is observed as an ordinary crash this same poll.
        while let Some(&(at, victim)) = chaos.last() {
            if at > poll {
                break;
            }
            chaos.pop();
            // Retarget a finished victim to any live worker; drop the
            // kill only if the whole family already converged.
            let target = if workers[victim as usize].child.is_some() {
                Some(victim as usize)
            } else {
                workers.iter().position(|w| w.child.is_some())
            };
            if let Some(idx) = target {
                if let Some(child) = workers[idx].child.as_mut() {
                    let _ = child.kill();
                    let _ = child.wait();
                    workers[idx].child = None;
                    chaos_delivered += 1;
                    eprintln!(
                        "mb-lab supervise: chaos kill #{chaos_delivered} -> shard {} (poll {poll})",
                        workers[idx].shard
                    );
                    // An abnormal death like any other: backoff applies.
                    crashed(&mut workers[idx], poll, policy, None);
                }
            }
        }

        let mut all_done = true;
        let mut fatal: Option<SuperviseError> = None;
        for w in workers.iter_mut() {
            if w.done {
                continue;
            }
            all_done = false;

            if let Some(child) = w.child.as_mut() {
                match child.try_wait()? {
                    None => {
                        // Running: clock-free progress heartbeat.
                        let len = fs::metadata(worker_journal(dir, w.shard))
                            .map(|m| m.len())
                            .unwrap_or(0);
                        if len > w.last_journal_len {
                            w.last_journal_len = len;
                            w.stale_polls = 0;
                        } else {
                            w.stale_polls += 1;
                            if w.stale_polls >= policy.hang_polls {
                                let _ = child.kill();
                                let _ = child.wait();
                                w.child = None;
                                w.hangs += 1;
                                eprintln!(
                                    "mb-lab supervise: shard {} hung ({} stale polls), killed",
                                    w.shard, w.stale_polls
                                );
                                crashed(w, poll, policy, None);
                            }
                        }
                    }
                    Some(status) => {
                        w.child = None;
                        let code = status.code();
                        if status.success() {
                            if shard_complete(dir, w.shard, policy, tasks, &quarantined_slots)? {
                                w.done = true;
                                w.fail_streak = 0;
                                w.last_failed_slot = None;
                            } else {
                                // Clean exit, incomplete shard: respawn
                                // under the crash budget so a systematic
                                // short-exit cannot spin forever.
                                eprintln!(
                                    "mb-lab supervise: shard {} exited clean but incomplete, respawning",
                                    w.shard
                                );
                                crashed(w, poll, policy, None);
                            }
                        } else {
                            use mb_simcore::error::exit_code;
                            let detail = last_stderr_line(dir, w.shard);
                            match code {
                                Some(c)
                                    if c == i32::from(exit_code::CORRUPT)
                                        || c == i32::from(exit_code::ENV_MISCONFIG)
                                        || c == i32::from(exit_code::USAGE) =>
                                {
                                    // Deterministically reproducible:
                                    // restarting cannot help.
                                    fatal = Some(SuperviseError::WorkerUnretryable {
                                        shard: w.shard,
                                        code: c as u8,
                                        detail,
                                    });
                                    break;
                                }
                                Some(c) if c == i32::from(exit_code::SLOT_PANIC) => {
                                    let slot = parse_failed_slot(&detail);
                                    eprintln!(
                                        "mb-lab supervise: shard {} slot panic ({}), streak {}",
                                        w.shard,
                                        detail,
                                        if slot == w.last_failed_slot {
                                            w.fail_streak + 1
                                        } else {
                                            1
                                        }
                                    );
                                    crashed(w, poll, policy, slot);
                                    if let Some(slot) = slot {
                                        if w.fail_streak >= policy.poison_threshold {
                                            quarantine.push(QuarantineRecord {
                                                slot,
                                                shard: w.shard,
                                                crashes: w.fail_streak,
                                            });
                                            quarantine.sort_by_key(|q| q.slot);
                                            persist_quarantine(dir, &quarantine)?;
                                            eprintln!(
                                                "mb-lab supervise: slot {slot} quarantined after {} \
                                                 consecutive crashes of shard {}",
                                                w.fail_streak, w.shard
                                            );
                                            // The cause is fenced: reset
                                            // the meters it was burning.
                                            w.fail_streak = 0;
                                            w.last_failed_slot = None;
                                            w.crashes_since_fence = 0;
                                            w.ready_at_poll = poll + 1;
                                        }
                                    }
                                }
                                _ => {
                                    // Signal kill or unclassified exit.
                                    crashed(w, poll, policy, None);
                                }
                            }
                        }
                    }
                }
            } else if poll >= w.ready_at_poll {
                if w.crashes_since_fence > policy.max_restarts {
                    fatal = Some(SuperviseError::RestartsExhausted {
                        shard: w.shard,
                        crashes: w.crashes_since_fence,
                    });
                    break;
                }
                // (Re)spawn, resuming from the journal and skipping
                // every currently fenced slot.
                let child = spawn_worker(
                    worker_exe,
                    campaign_name,
                    dir,
                    w.shard,
                    policy,
                    &quarantined_slots,
                )?;
                w.child = Some(child);
                w.attempts += 1;
                w.stale_polls = 0;
                w.last_journal_len = fs::metadata(worker_journal(dir, w.shard))
                    .map(|m| m.len())
                    .unwrap_or(0);
            }
        }
        if let Some(e) = fatal {
            break Err(e);
        }
        if all_done {
            break Ok(());
        }
        poll += 1;
        std::thread::sleep(std::time::Duration::from_millis(policy.poll_ms));
    };

    // Kill any survivors before reporting a family failure.
    if result.is_err() {
        for w in workers.iter_mut() {
            if let Some(child) = w.child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
    result?;

    // Collection: export each worker journal as a full transport
    // segment and splice it into the collector replica. The first
    // segment is ingested twice on purpose — every supervised run
    // exercises the transport's duplicate-upload no-op guarantee.
    let segment_dir = dir.join("segments");
    let collect_dir = dir.join("collect");
    fs::create_dir_all(&segment_dir)?;
    fs::create_dir_all(&collect_dir)?;
    let mut transport_appended = 0;
    let mut transport_duplicates = 0;
    let mut collected: Vec<PathBuf> = Vec::new();
    for shard in 0..policy.shards {
        let seg = segment_dir.join(format!("shard{shard}.seg"));
        let replica = collect_dir.join(format!("shard{shard}.journal"));
        transport::export_segment(&worker_journal(dir, shard), 0, &seg)?;
        let out = transport::ingest_segment(&replica, &seg)?;
        transport_appended += out.appended;
        transport_duplicates += out.duplicates;
        if shard == 0 {
            let replay = transport::ingest_segment(&replica, &seg)?;
            transport_duplicates += replay.duplicates;
        }
        collected.push(replica);
    }

    let quarantined_slots: Vec<usize> = quarantine.iter().map(|q| q.slot).collect();
    let merged = journal::merge_allowing(&dir.join("merged.journal"), &collected, &quarantined_slots)?;
    let accounting =
        CampaignAccounting::new(tasks, &merged.completed_slots(), &quarantined_slots);

    // Integrity gate: a fully measured campaign must reproduce its
    // pinned digest bit for bit; a degraded one records coverage only.
    let mut digest = None;
    let mut digest_checked = false;
    let mut digest_error = None;
    if accounting.is_full() {
        let d = crate::driver::digest_journal(&merged)?;
        digest = Some(d);
        if let Some(pinned) = campaign.pinned_digest() {
            digest_checked = true;
            if d != pinned {
                digest_error = Some(SuperviseError::DigestMismatch { got: d, pinned });
            }
        }
    }

    let report = SuperviseReport {
        campaign: campaign_name.to_string(),
        shards: policy.shards,
        polls: poll,
        chaos_kills: chaos_delivered,
        per_shard: workers
            .iter()
            .map(|w| ShardReport {
                shard: w.shard,
                attempts: w.attempts,
                crashes: w.crashes_total,
                hangs: w.hangs,
                backoff_ms: w.backoff_ms.clone(),
                records: Journal::load(&worker_journal(dir, w.shard))
                    .map(|j| j.records.len())
                    .unwrap_or(0),
            })
            .collect(),
        quarantined: quarantine,
        accounting,
        transport_appended,
        transport_duplicates,
        digest,
        digest_checked,
    };
    fs::write(dir.join("report.json"), report.to_json())?;
    match digest_error {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

/// Books one abnormal worker death: bumps the crash meters, updates
/// the poison streak when the failing slot is known, and schedules the
/// respawn behind the seeded backoff.
fn crashed(w: &mut WorkerState, poll: u64, policy: &SupervisePolicy, failed_slot: Option<usize>) {
    w.crashes_total += 1;
    match failed_slot {
        Some(slot) if w.last_failed_slot == Some(slot) => w.fail_streak += 1,
        Some(slot) => {
            w.last_failed_slot = Some(slot);
            w.fail_streak = 1;
        }
        // A signal kill or hang carries no slot attribution; it leaves
        // the poison streak alone rather than resetting a real streak.
        None => {}
    }
    let delay_ms = backoff_delay_ms(
        policy.seed,
        w.shard,
        w.crashes_since_fence,
        policy.backoff_base_ms,
        policy.backoff_cap_ms,
    );
    w.crashes_since_fence += 1;
    w.backoff_ms.push(delay_ms);
    w.ready_at_poll = poll + 1 + delay_ms.div_ceil(policy.poll_ms.max(1));
    w.stale_polls = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for attempt in 0..40 {
            let a = backoff_delay_ms(0xFEED, 1, attempt, 25, 2000);
            let b = backoff_delay_ms(0xFEED, 1, attempt, 25, 2000);
            assert_eq!(a, b, "same inputs, same delay");
            assert!(a <= 2000, "cap respected at attempt {attempt}");
        }
        // Different shards decorrelate (at least somewhere).
        let spread: Vec<u64> = (0..8)
            .map(|s| backoff_delay_ms(0xFEED, s, 3, 25, 2000))
            .collect();
        assert!(spread.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn backoff_grows_nominally_then_saturates() {
        // The jitter floor is nominal/2, so the lower bound itself
        // doubles until the cap takes over.
        let d0 = backoff_delay_ms(1, 0, 0, 100, 10_000);
        let d5 = backoff_delay_ms(1, 0, 5, 100, 10_000);
        assert!((50..=100).contains(&d0));
        assert!((1600..=3200).contains(&d5));
        let capped = backoff_delay_ms(1, 0, 30, 100, 10_000);
        assert!((5000..=10_000).contains(&capped));
    }

    #[test]
    fn chaos_schedule_is_seeded_and_paced() {
        let policy = SupervisePolicy {
            chaos_kills: 5,
            seed: 0xC4A05,
            ..SupervisePolicy::default()
        };
        let a = chaos_schedule(&policy);
        let b = chaos_schedule(&policy);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "strictly later polls");
        assert!(a.iter().all(|&(_, v)| v < policy.shards));
    }

    #[test]
    fn failed_slot_parses_from_the_stable_stderr_line() {
        assert_eq!(
            parse_failed_slot("mb-lab: slot 5 failed: sweep task 'slot5' panicked: poisoned"),
            Some(5)
        );
        assert_eq!(parse_failed_slot("mb-lab: slot 12 failed: x"), Some(12));
        assert_eq!(parse_failed_slot("mb-lab: journal I/O error: x"), None);
        assert_eq!(parse_failed_slot("unrelated"), None);
    }

    #[test]
    fn report_json_is_well_formed_enough_to_grep() {
        let report = SuperviseReport {
            campaign: "selftest".to_string(),
            shards: 2,
            polls: 42,
            chaos_kills: 1,
            per_shard: vec![ShardReport {
                shard: 0,
                attempts: 2,
                crashes: 1,
                hangs: 0,
                backoff_ms: vec![25],
                records: 8,
            }],
            quarantined: vec![QuarantineRecord {
                slot: 5,
                shard: 1,
                crashes: 3,
            }],
            accounting: CampaignAccounting::new(16, &[0, 1], &[5]),
            transport_appended: 8,
            transport_duplicates: 8,
            digest: None,
            digest_checked: false,
        };
        let json = report.to_json();
        assert!(json.contains("\"campaign\": \"selftest\""));
        assert!(json.contains("\"slot\": 5"));
        assert!(json.contains("\"digest\": null"));
        assert!(json.contains("\"backoff_ms\": [25]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
