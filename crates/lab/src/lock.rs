//! Ownership lockfiles for journals and family directories.
//!
//! `mb-lab run` appends to a journal, `mb-lab supervise` owns a whole
//! family directory, and `mb-lab serve` owns a data dir full of job
//! families. Each layer used to *assume* sole ownership; two writers
//! on one journal interleave appends and break the digest chain, and
//! two supervisors on one `--dir` double-spawn workers against the
//! same journals. The service mode makes that collision easy to
//! trigger (two operators pointing at one data dir), so ownership is
//! now an explicit, typed contract:
//!
//! * A [`PathLock`] is a sidecar file holding the owner's pid, created
//!   with `O_EXCL` so exactly one contender wins a race.
//! * A lock whose recorded pid is still alive (checked via
//!   `/proc/<pid>`) is a hard [`LockError::Owned`] error — mapped to
//!   exit code 5 (`ENV_MISCONFIG`), never retried, never stolen.
//! * A lock whose owner is dead (SIGKILL, power loss) is *stale*: it
//!   is removed and the acquisition retried, so crash recovery never
//!   needs a manual `rm`. The retry loops through `O_EXCL` again, so
//!   two contenders stealing the same stale lock still serialize.
//! * Dropping the guard removes the file; an abnormal exit leaves a
//!   stale lock, which the next owner steals by the rule above.
//!
//! The liveness probe is advisory (pids recycle), but the window is
//! the width of a pid reuse against a crashed owner's own lockfile —
//! the failure it closes (two *live* writers) is checked exactly.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Acquisition failure for a [`PathLock`].
#[derive(Debug)]
pub enum LockError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The path is owned by a process that is still alive.
    Owned {
        /// The lockfile that is held.
        path: PathBuf,
        /// The live owner's pid.
        pid: u32,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Io(e) => write!(f, "lockfile I/O error: {e}"),
            LockError::Owned { path, pid } => write!(
                f,
                "{} is already owned by live process {pid} \
                 (a second writer would corrupt it; stop that process first)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for LockError {}

impl From<std::io::Error> for LockError {
    fn from(e: std::io::Error) -> Self {
        LockError::Io(e)
    }
}

impl LockError {
    /// Exit code under the workspace contract: a held lock is an
    /// environment problem (exit 5), exactly like any other "this
    /// invocation must not run here" misconfiguration.
    pub fn exit_code(&self) -> u8 {
        mb_simcore::error::exit_code::ENV_MISCONFIG
    }
}

/// Whether `pid` names a live process. Linux reads `/proc`; elsewhere
/// the probe conservatively reports "alive" so locks are never stolen.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        // A zombie still has a /proc entry but can never touch the
        // locked path again — a SIGKILLed owner awaiting its reap must
        // not wedge the restarted writer. State is field 3 of
        // /proc/<pid>/stat, after the parenthesised comm.
        match std::fs::read_to_string(Path::new("/proc").join(pid.to_string()).join("stat")) {
            Ok(stat) => {
                let after_comm = stat.rsplit_once(')').map_or("", |(_, rest)| rest);
                !after_comm.trim_start().starts_with('Z')
            }
            Err(_) => false,
        }
    } else {
        true
    }
}

/// An exclusive ownership claim over one path, held for the guard's
/// lifetime (see the module docs for the steal/refuse rules).
#[derive(Debug)]
pub struct PathLock {
    path: PathBuf,
}

impl PathLock {
    /// The conventional lockfile path guarding `target` (journal file
    /// or directory): `<target>.lock` as a sibling.
    pub fn guard_path(target: &Path) -> PathBuf {
        let name = target
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "dir".to_string());
        target.with_file_name(format!("{name}.lock"))
    }

    /// Acquires the lock at `path`, stealing it only from a dead owner.
    ///
    /// # Errors
    ///
    /// [`LockError::Owned`] when a live process holds it, or
    /// [`LockError::Io`] on filesystem failure.
    pub fn acquire(path: &Path) -> Result<PathLock, LockError> {
        // Bounded retries: each loop either wins O_EXCL, errors on a
        // live owner, or removes one stale file. Unbounded contention
        // over freshly written locks resolves as Owned below.
        for _ in 0..16 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)
            {
                Ok(mut file) => {
                    write!(file, "{}", std::process::id())?;
                    file.sync_all()?;
                    return Ok(PathLock {
                        path: path.to_path_buf(),
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let text = match fs::read_to_string(path) {
                        Ok(t) => t,
                        // The holder released between our open and read:
                        // go around and contend again.
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                        Err(e) => return Err(LockError::Io(e)),
                    };
                    match text.trim().parse::<u32>() {
                        Ok(pid) if pid_alive(pid) => {
                            return Err(LockError::Owned {
                                path: path.to_path_buf(),
                                pid,
                            })
                        }
                        // Dead owner, or a torn/garbled pid from a
                        // crash mid-write: the claim is stale either
                        // way. Remove and re-contend.
                        _ => match fs::remove_file(path) {
                            Ok(()) => continue,
                            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                            Err(e) => return Err(LockError::Io(e)),
                        },
                    }
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        Err(LockError::Io(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            format!("lock at {} kept churning owners", path.display()),
        )))
    }

    /// Acquires the conventional lock guarding `target` (see
    /// [`PathLock::guard_path`]).
    ///
    /// # Errors
    ///
    /// As [`PathLock::acquire`].
    pub fn acquire_guarding(target: &Path) -> Result<PathLock, LockError> {
        PathLock::acquire(&PathLock::guard_path(target))
    }

    /// The lockfile this guard holds.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for PathLock {
    fn drop(&mut self) {
        // Best-effort release; a leftover file is a stale lock the
        // next owner steals after the liveness probe.
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mb-lock-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn acquire_writes_own_pid_and_release_removes() {
        let dir = scratch("basic");
        let path = dir.join("x.lock");
        let lock = PathLock::acquire(&path).expect("fresh acquire");
        let text = fs::read_to_string(&path).expect("lockfile readable");
        assert_eq!(text.trim(), std::process::id().to_string());
        drop(lock);
        assert!(!path.exists(), "drop releases the lock");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_owner_is_a_typed_refusal() {
        let dir = scratch("live");
        let path = dir.join("x.lock");
        let _held = PathLock::acquire(&path).expect("first acquire");
        // Our own pid is alive by definition, so the second claim must
        // refuse rather than steal.
        match PathLock::acquire(&path) {
            Err(LockError::Owned { pid, .. }) => {
                assert_eq!(pid, std::process::id());
            }
            other => panic!("expected Owned, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_and_garbled_locks_are_stolen() {
        let dir = scratch("stale");
        let path = dir.join("x.lock");
        // Pid 0 is never a live userspace process; garbage is a torn
        // write. Both are stale claims.
        for stale in ["0", "not-a-pid", ""] {
            fs::write(&path, stale).expect("plant stale lock");
            let lock = PathLock::acquire(&path).expect("steal stale lock");
            assert_eq!(
                fs::read_to_string(&path).expect("lockfile").trim(),
                std::process::id().to_string()
            );
            drop(lock);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn exit_code_is_env_misconfig() {
        let e = LockError::Owned {
            path: PathBuf::from("j.lock"),
            pid: 1,
        };
        assert_eq!(e.exit_code(), 5);
        assert!(e.to_string().contains("already owned by live process 1"));
    }

    #[test]
    fn guard_path_is_a_sibling_suffix() {
        assert_eq!(
            PathLock::guard_path(Path::new("/a/b/shard.journal")),
            PathBuf::from("/a/b/shard.journal.lock")
        );
        assert_eq!(
            PathLock::guard_path(Path::new("/a/family")),
            PathBuf::from("/a/family.lock")
        );
    }
}
