//! `mb-lab serve` — the always-on, multi-tenant campaign service.
//!
//! The paper's Tibidabo study was an experiment *queue*: many apps ×
//! configs × nodes, run over a shared cluster by many hands. This
//! module is that shape for our campaigns. A long-running supervisor
//! listens on a TCP socket, speaks the [`crate::protocol`] (`mbsrv1`)
//! line protocol, and multiplexes many shard families over a bounded
//! worker pool — std-only, thread-per-connection, no async runtime.
//!
//! The service contract, in order of importance:
//!
//! * **Determinism is untouched.** A job is exactly one
//!   [`crate::supervise`] family run in-process; the server adds
//!   scheduling and transport, never measurement. The same campaign
//!   submitted by any number of interleaved clients converges to the
//!   same pinned digest bit for bit.
//! * **Backpressure is typed.** The job queue is bounded
//!   ([`ServePolicy::queue_cap`]); a submission past the bound gets a
//!   `busy` reply (client exit code 7), never an unbounded buffer.
//! * **Crash tolerance is inherited, then proven.** Every job's
//!   journals live under `dir/jobs/<id>/`; a `submit` persists the
//!   job's identity (`job.meta`) before it is acknowledged, and a
//!   terminal state persists as `outcome.txt` (the rendered `done`
//!   frame). A SIGKILLed server therefore restarts by rescanning
//!   `jobs/` and re-enqueueing every job with no outcome — the
//!   journal/quarantine machinery resumes each family from where it
//!   died.
//! * **Ownership is explicit.** The data dir is held by a
//!   [`crate::lock::PathLock`] (`serve.lock`), each family dir by
//!   `supervise.lock`, each journal by its own lock — a second server
//!   on the same dir, or an orphaned worker still writing a journal,
//!   is a typed exit-5 refusal instead of silent corruption.
//!
//! Progress reported to `watch`ing clients is advisory: journaled
//! record counts scanned without verification (the merge/digest gate
//! re-verifies everything), and the ETA is the same mean-slot-cost
//! estimator as the `campaign_eta` bench — elapsed wall time over
//! slots completed this run, extrapolated to the remainder. Wall
//! clock here is reporting-only and never feeds a decision or a
//! measurement.

use crate::campaign;
use crate::lock::{LockError, PathLock};
use crate::protocol::{self, JobState, JobStatus, Reply, Request};
use crate::supervise::{self, SuperviseError, SupervisePolicy};
use crate::transport;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fs;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Knobs for one server instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServePolicy {
    /// Bind address; port 0 asks the OS for an ephemeral port (the
    /// chosen address is printed and written to `dir/addr.txt`).
    pub bind: String,
    /// Job-queue bound: submissions past it get the `busy` reply.
    pub queue_cap: usize,
    /// Concurrent shard families (worker-pool threads).
    pub workers: usize,
    /// Template for each job's supervisor; `shards` is overridden by
    /// the submission, `poll_ms` also paces `watch` heartbeats.
    pub supervise: SupervisePolicy,
}

impl Default for ServePolicy {
    fn default() -> Self {
        ServePolicy {
            bind: "127.0.0.1:0".to_string(),
            queue_cap: 8,
            workers: 2,
            supervise: SupervisePolicy::default(),
        }
    }
}

/// Everything that can keep the server from running.
#[derive(Debug)]
pub enum ServeError {
    /// Bind/listen/data-dir failure.
    Io(std::io::Error),
    /// The data dir is owned by a live server.
    Lock(LockError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Lock(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<LockError> for ServeError {
    fn from(e: LockError) -> Self {
        ServeError::Lock(e)
    }
}

impl ServeError {
    /// Exit code under the workspace contract: both variants are
    /// environment problems (exit 5).
    pub fn exit_code(&self) -> u8 {
        match self {
            ServeError::Io(_) => mb_simcore::error::exit_code::ENV_MISCONFIG,
            ServeError::Lock(e) => e.exit_code(),
        }
    }
}

/// Job counts at server exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs the server knew about.
    pub jobs: usize,
    /// Converged.
    pub done: usize,
    /// Failed.
    pub failed: usize,
    /// Cancelled.
    pub cancelled: usize,
    /// Still queued (persisted; a restart resumes them).
    pub queued_left: usize,
}

/// Server-side view of one job.
struct JobEntry {
    campaign: String,
    shards: u32,
    total: usize,
    state: JobState,
    digest: Option<u64>,
    checked: bool,
    detail: Option<String>,
    cancel: Arc<AtomicBool>,
    /// When the family started running — ETA reporting only.
    started: Option<std::time::Instant>, // mb-check: allow(wall-clock-in-model)
    /// Journaled records at start of this run, so the ETA rates only
    /// slots actually measured by this run (resumed jobs replay free).
    done_at_start: usize,
}

struct ServerState {
    jobs: BTreeMap<String, JobEntry>,
    queue: VecDeque<String>,
    next_id: u64,
    running: usize,
}

struct Shared {
    dir: PathBuf,
    policy: ServePolicy,
    worker_exe: PathBuf,
    addr: SocketAddr,
    state: Mutex<ServerState>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

fn jobs_root(dir: &Path) -> PathBuf {
    dir.join("jobs")
}

fn job_dir(dir: &Path, id: &str) -> PathBuf {
    jobs_root(dir).join(id)
}

fn meta_path(dir: &Path, id: &str) -> PathBuf {
    job_dir(dir, id).join("job.meta")
}

fn outcome_path(dir: &Path, id: &str) -> PathBuf {
    job_dir(dir, id).join("outcome.txt")
}

/// The file clients (and the CI smoke) read to find the live server.
pub fn addr_file(dir: &Path) -> PathBuf {
    dir.join("addr.txt")
}

/// Counts journaled records across the job's worker journals — an
/// advisory progress scan (complete `r `-records only, unverified;
/// the merge/digest gate is what certifies integrity).
fn scan_done(jdir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(jdir) else {
        return 0;
    };
    let mut done = 0;
    let mut names: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("worker"))
        })
        .collect();
    names.sort();
    for wdir in names {
        let Ok(bytes) = fs::read(wdir.join("shard.journal")) else {
            continue;
        };
        let text = String::from_utf8_lossy(&bytes);
        done += text
            .split_inclusive('\n')
            .filter(|l| l.ends_with('\n') && l.starts_with("r "))
            .count();
    }
    done
}

/// Persists a job's identity; written (and fsynced into place by the
/// rename) *before* the submission is acknowledged.
fn persist_meta(dir: &Path, id: &str, campaign: &str, shards: u32) -> std::io::Result<()> {
    fs::create_dir_all(job_dir(dir, id))?;
    fs::write(meta_path(dir, id), format!("campaign={campaign} shards={shards}\n"))
}

/// Persists a terminal state as the rendered `done` frame, so the
/// outcome format *is* the protocol format.
fn persist_outcome(dir: &Path, id: &str, entry_done: &Reply) -> std::io::Result<()> {
    let tmp = job_dir(dir, id).join("outcome.tmp");
    fs::write(&tmp, format!("{}\n", entry_done.render()))?;
    fs::rename(&tmp, outcome_path(dir, id))
}

fn done_frame(id: &str, e: &JobEntry) -> Reply {
    Reply::Done {
        job: id.to_string(),
        state: e.state,
        digest: e.digest,
        checked: e.checked,
        detail: e.detail.clone(),
    }
}

/// Rebuilds the job table from `dir/jobs/*`: jobs with a parseable
/// `outcome.txt` are terminal; everything else re-enqueues for resume
/// (bypassing the queue bound — accepted work is owed work).
fn rescan(dir: &Path) -> std::io::Result<(ServerState, usize)> {
    let mut state = ServerState {
        jobs: BTreeMap::new(),
        queue: VecDeque::new(),
        next_id: 1,
        running: 0,
    };
    let root = jobs_root(dir);
    let mut resumed = 0;
    let mut ids: Vec<String> = match fs::read_dir(&root) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().to_str().map(str::to_string))
            .collect(),
        Err(_) => Vec::new(),
    };
    ids.sort();
    for id in ids {
        let Ok(meta) = fs::read_to_string(meta_path(dir, &id)) else {
            continue; // a dir without meta was never acknowledged
        };
        let mut campaign_name = None;
        let mut shards = None;
        for token in meta.split_whitespace() {
            if let Some(v) = token.strip_prefix("campaign=") {
                campaign_name = Some(v.to_string());
            } else if let Some(v) = token.strip_prefix("shards=") {
                shards = v.parse::<u32>().ok();
            }
        }
        let (Some(campaign_name), Some(shards)) = (campaign_name, shards) else {
            continue;
        };
        let total = campaign::find(&campaign_name)
            .map(|c| c.task_labels().len())
            .unwrap_or(0);
        let mut entry = JobEntry {
            campaign: campaign_name,
            shards,
            total,
            state: JobState::Queued,
            digest: None,
            checked: false,
            detail: None,
            cancel: Arc::new(AtomicBool::new(false)),
            started: None,
            done_at_start: 0,
        };
        let terminal = fs::read_to_string(outcome_path(dir, &id))
            .ok()
            .and_then(|text| Reply::parse(text.trim_end()).ok());
        if let Some(Reply::Done {
            state: s,
            digest,
            checked,
            detail,
            ..
        }) = terminal
        {
            entry.state = s;
            entry.digest = digest;
            entry.checked = checked;
            entry.detail = detail;
        } else {
            state.queue.push_back(id.clone());
            resumed += 1;
        }
        if let Some(n) = id.strip_prefix('j').and_then(|n| n.parse::<u64>().ok()) {
            state.next_id = state.next_id.max(n + 1);
        }
        state.jobs.insert(id, entry);
    }
    Ok((state, resumed))
}

/// Runs the server until a `shutdown` frame: binds, rescans, spawns
/// the worker pool, then accepts connections (one request each).
/// Returns the exit-time job tally. See the module docs for the
/// service contract.
///
/// # Errors
///
/// [`ServeError::Lock`] when the data dir is owned by a live server,
/// or [`ServeError::Io`] on bind/listen/data-dir failure.
pub fn serve(
    dir: &Path,
    worker_exe: &Path,
    policy: &ServePolicy,
) -> Result<ServeSummary, ServeError> {
    fs::create_dir_all(jobs_root(dir))?;
    let _lock = PathLock::acquire(&dir.join("serve.lock"))?;

    let (state, resumed) = rescan(dir)?;
    if resumed > 0 {
        eprintln!("mb-lab serve: resuming {resumed} unfinished job(s) from {}", dir.display());
    }

    let listener = TcpListener::bind(&policy.bind)?;
    let addr = listener.local_addr()?;
    // tmp+rename so a polling client never reads a torn address.
    let tmp = dir.join("addr.tmp");
    fs::write(&tmp, format!("{addr}\n"))?;
    fs::rename(&tmp, addr_file(dir))?;
    println!("mb-lab serve: listening on {addr} (dir {})", dir.display());

    let shared = Arc::new(Shared {
        dir: dir.to_path_buf(),
        policy: policy.clone(),
        worker_exe: worker_exe.to_path_buf(),
        addr,
        state: Mutex::new(state),
        work_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
    });

    let mut pool = Vec::new();
    for _ in 0..policy.workers.max(1) {
        let shared = Arc::clone(&shared);
        // The pool is the service's whole point; determinism lives in
        // the per-job supervisor, which is single-owner by lockfile.
        pool.push(std::thread::spawn(move || worker_loop(&shared))); // mb-check: allow(rogue-threads)
    }

    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        // One detached handler per connection; each serves one request.
        std::thread::spawn(move || handle_conn(&shared, stream)); // mb-check: allow(rogue-threads)
    }

    shared.work_ready.notify_all();
    for handle in pool {
        let _ = handle.join();
    }
    let _ = fs::remove_file(addr_file(dir));

    let st = shared.state.lock().expect("server state mutex");
    let count = |s: JobState| st.jobs.values().filter(|e| e.state == s).count();
    Ok(ServeSummary {
        jobs: st.jobs.len(),
        done: count(JobState::Done),
        failed: count(JobState::Failed),
        cancelled: count(JobState::Cancelled),
        queued_left: count(JobState::Queued) + count(JobState::Running),
    })
}

/// Worker-pool thread: pop a job, supervise it to a terminal state,
/// repeat. On shutdown the current job is drained, queued jobs stay
/// persisted for the next server.
fn worker_loop(shared: &Shared) {
    loop {
        let id = {
            let mut st = shared.state.lock().expect("server state mutex");
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    break id;
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .expect("server state mutex");
            }
        };
        run_job(shared, &id);
    }
}

/// Supervises one job's shard family in-process and persists the
/// terminal state.
fn run_job(shared: &Shared, id: &str) {
    let jdir = job_dir(&shared.dir, id);
    let (campaign_name, shards, cancel) = {
        let mut st = shared.state.lock().expect("server state mutex");
        let Some(entry) = st.jobs.get_mut(id) else {
            return;
        };
        if entry.state != JobState::Queued {
            return; // cancelled between pop and here
        }
        entry.state = JobState::Running;
        // Reporting-only: feeds the watch ETA, never a decision.
        entry.started = Some(std::time::Instant::now()); // mb-check: allow(wall-clock-in-model)
        entry.done_at_start = scan_done(&jdir);
        let picked = (entry.campaign.clone(), entry.shards, Arc::clone(&entry.cancel));
        st.running += 1;
        picked
    };

    let mut policy = shared.policy.supervise.clone();
    policy.shards = shards;
    let result = supervise::supervise_cancellable(
        &campaign_name,
        &jdir,
        &shared.worker_exe,
        &policy,
        Some(&cancel),
    );
    let (state, digest, checked, detail) = match result {
        Ok(report) => {
            let detail = (!report.quarantined.is_empty())
                .then(|| format!("{} slot(s) quarantined", report.quarantined.len()));
            (JobState::Done, report.digest, report.digest_checked, detail)
        }
        Err(SuperviseError::Cancelled) => (
            JobState::Cancelled,
            None,
            false,
            Some("cancelled while running; journals intact".to_string()),
        ),
        Err(e) => (JobState::Failed, None, false, Some(e.to_string())),
    };

    let frame = {
        let mut st = shared.state.lock().expect("server state mutex");
        st.running -= 1;
        let entry = st.jobs.get_mut(id).expect("running job stays registered");
        entry.state = state;
        entry.digest = digest;
        entry.checked = checked;
        entry.detail = detail;
        done_frame(id, entry)
    };
    if let Err(e) = persist_outcome(&shared.dir, id, &frame) {
        eprintln!("mb-lab serve: cannot persist outcome of {id}: {e}");
    }
    eprintln!("mb-lab serve: {id} -> {}", frame.render());
}

/// Serves one connection: exactly one request frame, then the reply
/// (or reply stream), then close. A malformed frame is answered with
/// the typed `err` reply — the server never dies on client input.
fn handle_conn(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let request = match protocol::read_frame(&mut reader) {
        Ok(Some(line)) => match Request::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                send_err(&mut writer, &e);
                return;
            }
        },
        Ok(None) => return,
        Err(e) => {
            send_err(&mut writer, &e);
            return;
        }
    };
    match request {
        Request::Submit { campaign, shards } => handle_submit(shared, &mut writer, &campaign, shards),
        Request::Status { job } => handle_status(shared, &mut writer, job.as_deref()),
        Request::Watch { job } => handle_watch(shared, &mut writer, &job),
        Request::Cancel { job } => handle_cancel(shared, &mut writer, &job),
        Request::Fetch { job } => handle_fetch(shared, &mut writer, &job),
        Request::Ping => send(&mut writer, &Reply::Pong),
        Request::Shutdown => handle_shutdown(shared, &mut writer),
    }
}

fn send(writer: &mut TcpStream, reply: &Reply) {
    // A vanished client is its own problem; the server moves on.
    let _ = protocol::write_frame(writer, &reply.render());
}

fn send_err(writer: &mut TcpStream, e: &protocol::ProtocolError) {
    send(
        writer,
        &Reply::Err {
            code: e.exit_code(),
            msg: e.to_string(),
        },
    );
}

fn send_typed_err(writer: &mut TcpStream, code: u8, msg: impl Into<String>) {
    send(
        writer,
        &Reply::Err {
            code,
            msg: msg.into(),
        },
    );
}

fn handle_submit(shared: &Shared, writer: &mut TcpStream, campaign_name: &str, shards: u32) {
    use mb_simcore::error::exit_code;
    if shared.shutdown.load(Ordering::Relaxed) {
        send_typed_err(writer, exit_code::UNAVAILABLE, "server is shutting down");
        return;
    }
    let Some(c) = campaign::find(campaign_name) else {
        send_typed_err(
            writer,
            exit_code::ENV_MISCONFIG,
            format!("unknown campaign '{campaign_name}' (try `mb-lab list`)"),
        );
        return;
    };
    let total = c.task_labels().len();
    let reply = {
        let mut st = shared.state.lock().expect("server state mutex");
        if st.queue.len() >= shared.policy.queue_cap {
            Reply::Busy {
                queued: st.queue.len(),
                cap: shared.policy.queue_cap,
            }
        } else {
            let id = format!("j{}", st.next_id);
            st.next_id += 1;
            // Persist identity before acknowledging: an acknowledged
            // job must survive a SIGKILL landing right after.
            if let Err(e) = persist_meta(&shared.dir, &id, campaign_name, shards) {
                send_typed_err(
                    writer,
                    exit_code::ENV_MISCONFIG,
                    format!("cannot persist job: {e}"),
                );
                return;
            }
            st.jobs.insert(
                id.clone(),
                JobEntry {
                    campaign: campaign_name.to_string(),
                    shards,
                    total,
                    state: JobState::Queued,
                    digest: None,
                    checked: false,
                    detail: None,
                    cancel: Arc::new(AtomicBool::new(false)),
                    started: None,
                    done_at_start: 0,
                },
            );
            st.queue.push_back(id.clone());
            shared.work_ready.notify_one();
            Reply::Submitted {
                job: id,
                queued: st.queue.len(),
            }
        }
    };
    send(writer, &reply);
}

/// Snapshot of one job for the wire (the `done` scan happens outside
/// the state lock — it reads journal files).
fn snapshot(shared: &Shared, id: &str) -> Option<JobStatus> {
    let (campaign, shards, state, digest, total) = {
        let st = shared.state.lock().expect("server state mutex");
        let e = st.jobs.get(id)?;
        (e.campaign.clone(), e.shards, e.state, e.digest, e.total)
    };
    Some(JobStatus {
        job: id.to_string(),
        campaign,
        shards,
        state,
        done: scan_done(&job_dir(&shared.dir, id)),
        total,
        digest,
    })
}

fn handle_status(shared: &Shared, writer: &mut TcpStream, job: Option<&str>) {
    use mb_simcore::error::exit_code;
    match job {
        Some(id) => match snapshot(shared, id) {
            Some(s) => send(writer, &Reply::Job(s)),
            None => send_typed_err(writer, exit_code::ENV_MISCONFIG, format!("unknown job '{id}'")),
        },
        None => {
            let ids: Vec<String> = {
                let st = shared.state.lock().expect("server state mutex");
                st.jobs.keys().cloned().collect()
            };
            let mut count = 0;
            for id in ids {
                if let Some(s) = snapshot(shared, &id) {
                    send(writer, &Reply::Job(s));
                    count += 1;
                }
            }
            send(writer, &Reply::End { count });
        }
    }
}

fn handle_watch(shared: &Shared, writer: &mut TcpStream, id: &str) {
    use mb_simcore::error::exit_code;
    let poll = std::time::Duration::from_millis(shared.policy.supervise.poll_ms.max(1));
    loop {
        let terminal = {
            let st = shared.state.lock().expect("server state mutex");
            match st.jobs.get(id) {
                None => {
                    drop(st);
                    send_typed_err(
                        writer,
                        exit_code::ENV_MISCONFIG,
                        format!("unknown job '{id}'"),
                    );
                    return;
                }
                Some(e) if e.state.is_terminal() => Some(done_frame(id, e)),
                Some(e) => {
                    let started = e.started;
                    let done_at_start = e.done_at_start;
                    let total = e.total;
                    drop(st);
                    let done = scan_done(&job_dir(&shared.dir, id));
                    // Same estimator as the campaign_eta bench: mean
                    // observed slot cost × remaining slots. Advisory.
                    let eta_ms = started.and_then(|t0| {
                        let fresh = done.saturating_sub(done_at_start);
                        if fresh == 0 || done >= total {
                            return None;
                        }
                        let elapsed = t0.elapsed().as_millis() as u64; // mb-check: allow(wall-clock-in-model)
                        Some(elapsed * (total - done) as u64 / fresh as u64)
                    });
                    let frame = Reply::Progress {
                        job: id.to_string(),
                        done,
                        total,
                        eta_ms,
                    };
                    if protocol::write_frame(writer, &frame.render()).is_err() {
                        return; // client went away
                    }
                    None
                }
            }
        };
        if let Some(frame) = terminal {
            send(writer, &frame);
            return;
        }
        std::thread::sleep(poll);
    }
}

fn handle_cancel(shared: &Shared, writer: &mut TcpStream, id: &str) {
    use mb_simcore::error::exit_code;
    let outcome = {
        let mut st = shared.state.lock().expect("server state mutex");
        match st.jobs.get_mut(id) {
            None => {
                drop(st);
                send_typed_err(writer, exit_code::ENV_MISCONFIG, format!("unknown job '{id}'"));
                return;
            }
            Some(e) if e.state == JobState::Queued => {
                e.state = JobState::Cancelled;
                e.detail = Some("cancelled while queued".to_string());
                let frame = done_frame(id, e);
                st.queue.retain(|q| q != id);
                Some(frame)
            }
            Some(e) if e.state == JobState::Running => {
                // Cooperative: the supervisor kills the family's
                // workers at its next poll and reports Cancelled.
                e.cancel.store(true, Ordering::Relaxed);
                None
            }
            Some(_) => None, // terminal already: cancel is idempotent
        }
    };
    if let Some(frame) = &outcome {
        if let Err(e) = persist_outcome(&shared.dir, id, frame) {
            eprintln!("mb-lab serve: cannot persist outcome of {id}: {e}");
        }
    }
    match snapshot(shared, id) {
        Some(s) => send(writer, &Reply::Job(s)),
        None => send_typed_err(writer, exit_code::ENV_MISCONFIG, format!("unknown job '{id}'")),
    }
}

fn handle_fetch(shared: &Shared, writer: &mut TcpStream, id: &str) {
    use mb_simcore::error::exit_code;
    let state = {
        let st = shared.state.lock().expect("server state mutex");
        match st.jobs.get(id) {
            None => {
                drop(st);
                send_typed_err(writer, exit_code::ENV_MISCONFIG, format!("unknown job '{id}'"));
                return;
            }
            Some(e) => e.state,
        }
    };
    if state != JobState::Done {
        send_typed_err(
            writer,
            exit_code::FAILURE,
            format!("job '{id}' is {}, nothing to fetch", state.as_str()),
        );
        return;
    }
    // Reuse the PR-7 transport verbatim: export the merged journal as
    // one chain-verified mbseg1 segment and stream its lines.
    let jdir = job_dir(&shared.dir, id);
    let seg_path = jdir.join("fetch.seg");
    if let Err(e) = transport::export_segment(&jdir.join("merged.journal"), 0, &seg_path) {
        send_typed_err(writer, e.exit_code(), e.to_string());
        return;
    }
    let text = match fs::read_to_string(&seg_path) {
        Ok(t) => t,
        Err(e) => {
            send_typed_err(writer, exit_code::ENV_MISCONFIG, format!("cannot read segment: {e}"));
            return;
        }
    };
    let lines: Vec<&str> = text.lines().collect();
    send(writer, &Reply::Segment { lines: lines.len() });
    for line in lines {
        if protocol::write_frame(writer, line).is_err() {
            return;
        }
    }
}

fn handle_shutdown(shared: &Shared, writer: &mut TcpStream) {
    let running = {
        let st = shared.state.lock().expect("server state mutex");
        st.running
    };
    shared.shutdown.store(true, Ordering::Relaxed);
    shared.work_ready.notify_all();
    send(writer, &Reply::Stopping { running });
    // Wake the accept loop so it observes the flag.
    let _ = TcpStream::connect(shared.addr);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescan_of_an_empty_dir_is_empty() {
        let dir = std::env::temp_dir().join(format!("mb-serve-rescan-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(jobs_root(&dir)).expect("scratch");
        let (state, resumed) = rescan(&dir).expect("rescan");
        assert_eq!(state.jobs.len(), 0);
        assert_eq!(resumed, 0);
        assert_eq!(state.next_id, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rescan_reenqueues_unfinished_and_keeps_terminal_jobs() {
        let dir = std::env::temp_dir().join(format!("mb-serve-rescan2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(jobs_root(&dir)).expect("scratch");
        persist_meta(&dir, "j3", "selftest", 2).expect("meta");
        persist_meta(&dir, "j7", "fig3-quick", 1).expect("meta");
        let done = Reply::Done {
            job: "j7".to_string(),
            state: JobState::Done,
            digest: Some(0xd0d5_f716_d0b3_0356),
            checked: true,
            detail: None,
        };
        persist_outcome(&dir, "j7", &done).expect("outcome");
        let (state, resumed) = rescan(&dir).expect("rescan");
        assert_eq!(resumed, 1);
        assert_eq!(state.queue, vec!["j3".to_string()]);
        assert_eq!(state.jobs["j7"].state, JobState::Done);
        assert_eq!(state.jobs["j7"].digest, Some(0xd0d5_f716_d0b3_0356));
        assert!(state.jobs["j7"].checked);
        assert_eq!(state.jobs["j3"].state, JobState::Queued);
        assert_eq!(state.next_id, 8, "next id clears every rescanned id");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_done_counts_only_complete_record_lines() {
        let dir = std::env::temp_dir().join(format!("mb-serve-scan-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("worker0")).expect("scratch");
        fs::write(
            dir.join("worker0").join("shard.journal"),
            "mblab1 campaign=x seed=0 tasks=2 shard=0/1\nr 0 aa bb\nr 1 cc",
        )
        .expect("journal");
        // The torn tail ("r 1 cc" without terminator) must not count.
        assert_eq!(scan_done(&dir), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
