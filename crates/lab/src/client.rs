//! The client half of the `mbsrv1` service: one connection per
//! request, typed replies mapped back onto the documented exit codes.
//!
//! Every call here opens a TCP connection to the server, writes one
//! request frame, and consumes the reply (or reply stream). The
//! failure mapping is the whole point:
//!
//! * a refused/dropped connection is [`ClientError::Protocol`] with
//!   an I/O cause → exit 7 (`UNAVAILABLE`) — the server is down,
//!   retry later;
//! * a `busy` reply is [`ClientError::Busy`] → exit 7 — typed
//!   backpressure, retry later;
//! * an `err code=N` reply is [`ClientError::Server`] → exit `N`,
//!   forwarding the server's classification verbatim;
//! * a frame we cannot parse (version skew, malformed) → exit 6
//!   (`PROTOCOL`).
//!
//! Fetched segments are raw `mbseg1` lines; [`fetch`] writes them to
//! a file and chain-verifies with [`crate::transport::load_segment`]
//! before reporting success, so a truncated or tampered wire transfer
//! is a typed corruption error (exit 3), never a quietly short file.

use crate::protocol::{self, JobState, JobStatus, ProtocolError, Reply, Request};
use crate::transport::{self, TransportError};
use std::fmt;
use std::fs;
use std::io::BufReader;
use std::net::TcpStream;
use std::path::Path;

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Wire fault: connect/read/write failure or an unparseable frame.
    Protocol(ProtocolError),
    /// The server answered with a typed error.
    Server {
        /// Exit code the server assigned.
        code: u8,
        /// The server's message.
        msg: String,
    },
    /// Typed backpressure: the job queue is at its bound.
    Busy {
        /// Jobs queued at the server.
        queued: usize,
        /// The server's queue bound.
        cap: usize,
    },
    /// The server answered with a frame this request cannot accept.
    Unexpected {
        /// The frame received.
        got: String,
    },
    /// A fetched segment failed chain verification.
    Transport(TransportError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server { code, msg } => write!(f, "server error (code {code}): {msg}"),
            ClientError::Busy { queued, cap } => write!(
                f,
                "server busy: job queue at its bound ({queued}/{cap}); retry later"
            ),
            ClientError::Unexpected { got } => write!(f, "unexpected reply frame: '{got}'"),
            ClientError::Transport(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

impl ClientError {
    /// Exit code under the workspace contract (see module docs).
    pub fn exit_code(&self) -> u8 {
        use mb_simcore::error::exit_code;
        match self {
            ClientError::Protocol(e) => e.exit_code(),
            ClientError::Server { code, .. } => *code,
            ClientError::Busy { .. } => exit_code::UNAVAILABLE,
            ClientError::Unexpected { .. } => exit_code::PROTOCOL,
            ClientError::Transport(e) => e.exit_code(),
        }
    }
}

/// One open request: reader for replies, writer already flushed.
struct Session {
    reader: BufReader<TcpStream>,
}

impl Session {
    fn open(addr: &str, request: &Request) -> Result<Session, ClientError> {
        let mut stream = TcpStream::connect(addr).map_err(ProtocolError::Io)?;
        protocol::write_frame(&mut stream, &request.render())?;
        Ok(Session {
            reader: BufReader::new(stream),
        })
    }

    /// Reads one reply frame; EOF and `err`/`busy` replies are typed.
    fn reply(&mut self) -> Result<Reply, ClientError> {
        let line = protocol::read_frame(&mut self.reader)?
            .ok_or(ClientError::Protocol(ProtocolError::Truncated { got: 0 }))?;
        match Reply::parse(&line)? {
            Reply::Err { code, msg } => Err(ClientError::Server { code, msg }),
            Reply::Busy { queued, cap } => Err(ClientError::Busy { queued, cap }),
            other => Ok(other),
        }
    }

    /// Reads one raw (non-frame) line, as used by segment streaming.
    fn raw_line(&mut self) -> Result<String, ClientError> {
        protocol::read_frame(&mut self.reader)?
            .ok_or(ClientError::Protocol(ProtocolError::Truncated { got: 0 }))
    }
}

/// Submits a shard family; returns `(job id, queue depth)`.
///
/// # Errors
///
/// Any [`ClientError`]; [`ClientError::Busy`] is the typed
/// backpressure case.
pub fn submit(addr: &str, campaign: &str, shards: u32) -> Result<(String, usize), ClientError> {
    let mut s = Session::open(
        addr,
        &Request::Submit {
            campaign: campaign.to_string(),
            shards,
        },
    )?;
    match s.reply()? {
        Reply::Submitted { job, queued } => Ok((job, queued)),
        other => Err(ClientError::Unexpected { got: other.render() }),
    }
}

/// Snapshots one job, or every job when `job` is `None`.
///
/// # Errors
///
/// Any [`ClientError`].
pub fn status(addr: &str, job: Option<&str>) -> Result<Vec<JobStatus>, ClientError> {
    let mut s = Session::open(
        addr,
        &Request::Status {
            job: job.map(str::to_string),
        },
    )?;
    match job {
        Some(_) => match s.reply()? {
            Reply::Job(snapshot) => Ok(vec![snapshot]),
            other => Err(ClientError::Unexpected { got: other.render() }),
        },
        None => {
            let mut all = Vec::new();
            loop {
                match s.reply()? {
                    Reply::Job(snapshot) => all.push(snapshot),
                    Reply::End { count } => {
                        if count != all.len() {
                            return Err(ClientError::Unexpected {
                                got: format!("end count={count} after {} snapshots", all.len()),
                            });
                        }
                        return Ok(all);
                    }
                    other => return Err(ClientError::Unexpected { got: other.render() }),
                }
            }
        }
    }
}

/// The terminal frame a `watch` stream ends with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchOutcome {
    /// Terminal state.
    pub state: JobState,
    /// Merged digest (fully measured campaigns only).
    pub digest: Option<u64>,
    /// Whether the digest was checked against a registry pin.
    pub checked: bool,
    /// Postmortem / degradation note.
    pub detail: Option<String>,
}

/// Watches a job to its terminal state, feeding every progress frame
/// to `on_progress(done, total, eta_ms)`.
///
/// # Errors
///
/// Any [`ClientError`].
pub fn watch(
    addr: &str,
    job: &str,
    mut on_progress: impl FnMut(usize, usize, Option<u64>),
) -> Result<WatchOutcome, ClientError> {
    let mut s = Session::open(
        addr,
        &Request::Watch {
            job: job.to_string(),
        },
    )?;
    loop {
        match s.reply()? {
            Reply::Progress {
                done, total, eta_ms, ..
            } => on_progress(done, total, eta_ms),
            Reply::Done {
                state,
                digest,
                checked,
                detail,
                ..
            } => {
                return Ok(WatchOutcome {
                    state,
                    digest,
                    checked,
                    detail,
                })
            }
            other => return Err(ClientError::Unexpected { got: other.render() }),
        }
    }
}

/// Cancels a job (idempotent); returns the post-cancel snapshot. A
/// running job is cancelled cooperatively — its state flips once the
/// supervisor has killed the family, so the snapshot may still say
/// `running`; `watch` observes the flip.
///
/// # Errors
///
/// Any [`ClientError`].
pub fn cancel(addr: &str, job: &str) -> Result<JobStatus, ClientError> {
    let mut s = Session::open(
        addr,
        &Request::Cancel {
            job: job.to_string(),
        },
    )?;
    match s.reply()? {
        Reply::Job(snapshot) => Ok(snapshot),
        other => Err(ClientError::Unexpected { got: other.render() }),
    }
}

/// Fetches a done job's merged journal as an `mbseg1` segment file at
/// `out`, chain-verifying it before reporting the record count.
///
/// # Errors
///
/// Any [`ClientError`]; a segment that fails verification is
/// [`ClientError::Transport`] (exit 3) and the file is removed.
pub fn fetch(addr: &str, job: &str, out: &Path) -> Result<usize, ClientError> {
    let mut s = Session::open(
        addr,
        &Request::Fetch {
            job: job.to_string(),
        },
    )?;
    let lines = match s.reply()? {
        Reply::Segment { lines } => lines,
        other => return Err(ClientError::Unexpected { got: other.render() }),
    };
    let mut text = String::new();
    for _ in 0..lines {
        text.push_str(&s.raw_line()?);
        text.push('\n');
    }
    fs::write(out, &text).map_err(|e| ClientError::Protocol(ProtocolError::Io(e)))?;
    match transport::load_segment(out) {
        Ok(segment) => Ok(segment.records.len()),
        Err(e) => {
            let _ = fs::remove_file(out);
            Err(ClientError::Transport(e))
        }
    }
}

/// Liveness probe.
///
/// # Errors
///
/// Any [`ClientError`].
pub fn ping(addr: &str) -> Result<(), ClientError> {
    let mut s = Session::open(addr, &Request::Ping)?;
    match s.reply()? {
        Reply::Pong => Ok(()),
        other => Err(ClientError::Unexpected { got: other.render() }),
    }
}

/// Asks the server to stop accepting work and exit once running jobs
/// drain; returns how many jobs were still running.
///
/// # Errors
///
/// Any [`ClientError`].
pub fn shutdown(addr: &str) -> Result<usize, ClientError> {
    let mut s = Session::open(addr, &Request::Shutdown)?;
    match s.reply()? {
        Reply::Stopping { running } => Ok(running),
        other => Err(ClientError::Unexpected { got: other.render() }),
    }
}
