//! Journal transport: segment export/ingest between journal
//! directories.
//!
//! A distributed shard family runs each worker against a *local*
//! journal and ships progress to a collector as **segments** — the
//! stand-in for per-host uploads the ROADMAP's "Distributed campaigns"
//! item calls for. A segment is a window of a journal's record lines
//! plus enough framing to splice it into a replica without trusting
//! the network path:
//!
//! ```text
//! mbseg1 campaign=fig3-quick seed=000000000005ca1e tasks=9 shard=0/2 from=2 count=3 chain=9c1d2e3f4a5b6c7d
//! r 4 4010203040506070 0123456789abcdef
//! r 6 40fe000000000000 fedcba9876543210
//! r 8 4100400000000000 13579bdf02468ace
//! end 13579bdf02468ace
//! ```
//!
//! * `from` is the append-order offset of the first carried record in
//!   the source journal, `count` the number of records carried.
//! * `chain` is the journal's digest-chain value *before* the first
//!   carried record; the `end` trailer is the chain value after the
//!   last. Both re-derive from the carried bodies via the same
//!   FNV-1a/SplitMix64 chain the journal itself uses, so a tampered or
//!   reordered segment fails closed before a single record lands.
//! * The `end` trailer doubles as the truncation sentinel: a segment
//!   cut short in flight is missing it (or carries fewer records than
//!   `count`) and is rejected wholesale as [`TransportError::TornSegment`]
//!   — ingest is all-or-nothing, never a partial splice.
//!
//! Ingest is **idempotent**: re-uploading a segment the replica already
//! holds verifies the overlap against the replica's own chain and
//! applies nothing; uploading a segment whose `from` lies beyond the
//! replica's end is a [`TransportError::Gap`] (arrived out of order —
//! retry after the earlier segment lands); anything that disagrees with
//! the replica's chain is a hard error. Uploading the same set of
//! segments in any valid order, any number of times, converges every
//! replica to a byte-identical copy of the source journal.

use crate::journal::{
    chain_step, parse_record, record_body, Journal, JournalError, JournalHeader,
};
use std::fmt;
use std::fs;
use std::path::Path;

/// Format version token leading every segment header.
pub const SEGMENT_VERSION: &str = "mbseg1";

/// Everything that can go wrong exporting or ingesting a segment.
#[derive(Debug)]
pub enum TransportError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The source or destination journal failed verification.
    Journal(JournalError),
    /// The segment's version token is not [`SEGMENT_VERSION`].
    VersionSkew {
        /// The token actually found.
        found: String,
    },
    /// The segment header could not be parsed.
    BadSegment {
        /// What failed to parse.
        detail: String,
    },
    /// The segment was cut short in flight: missing `end` trailer,
    /// fewer records than `count`, or trailing bytes past the trailer.
    /// Rejected wholesale — re-upload the full segment.
    TornSegment {
        /// What is missing or extra.
        detail: String,
    },
    /// The segment belongs to a different journal than the destination
    /// (campaign, seed, task count or shard disagree).
    SegmentMismatch {
        /// Which field disagreed.
        field: &'static str,
        /// Value in the segment.
        found: String,
        /// Value in (or expected by) the destination.
        expected: String,
    },
    /// A carried record's chain does not re-derive — the segment was
    /// tampered with, records were reordered, or it disagrees with the
    /// destination's history at the splice point.
    ChainBreak {
        /// Zero-based index of the first bad record within the segment
        /// (`count` means the `end` trailer itself disagreed).
        record: usize,
    },
    /// The segment starts past the destination's end: an earlier
    /// segment has not arrived yet. Retry after it lands.
    Gap {
        /// Records the destination currently holds.
        have: usize,
        /// Offset the segment wants to splice at.
        from: usize,
    },
    /// An export was asked for a window outside the source journal.
    BadRange {
        /// Requested start offset.
        from: usize,
        /// Records the source journal holds.
        len: usize,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Journal(e) => write!(f, "transport journal error: {e}"),
            TransportError::VersionSkew { found } => write!(
                f,
                "segment version skew: found '{found}', this build reads '{SEGMENT_VERSION}'"
            ),
            TransportError::BadSegment { detail } => {
                write!(f, "unparseable segment: {detail}")
            }
            TransportError::TornSegment { detail } => {
                write!(f, "torn segment rejected: {detail}")
            }
            TransportError::SegmentMismatch {
                field,
                found,
                expected,
            } => write!(
                f,
                "segment does not belong to this journal: {field} is '{found}', expected '{expected}'"
            ),
            TransportError::ChainBreak { record } => write!(
                f,
                "segment digest chain broken at record {record}: tampered, reordered or \
                 divergent from the destination"
            ),
            TransportError::Gap { have, from } => write!(
                f,
                "segment starts at record {from} but destination holds {have}: an earlier \
                 segment is missing, retry after it arrives"
            ),
            TransportError::BadRange { from, len } => {
                write!(f, "export window starts at record {from} past journal end {len}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<JournalError> for TransportError {
    fn from(e: JournalError) -> Self {
        TransportError::Journal(e)
    }
}

impl TransportError {
    /// Process exit code for this error, following the same contract
    /// as [`JournalError::exit_code`]: anything that means "the bytes
    /// are bad" is corruption (3), anything that means "these files do
    /// not belong together / arrived in the wrong order" is a
    /// misconfiguration of the transfer (5).
    pub fn exit_code(&self) -> u8 {
        use mb_simcore::error::exit_code;
        match self {
            TransportError::VersionSkew { .. }
            | TransportError::BadSegment { .. }
            | TransportError::TornSegment { .. }
            | TransportError::ChainBreak { .. } => exit_code::CORRUPT,
            TransportError::Journal(e) => e.exit_code(),
            TransportError::Io(_)
            | TransportError::SegmentMismatch { .. }
            | TransportError::Gap { .. }
            | TransportError::BadRange { .. } => exit_code::ENV_MISCONFIG,
        }
    }
}

/// The framing of one parsed segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Identity of the journal this segment was cut from.
    pub header: JournalHeader,
    /// Append-order offset of the first carried record in the source.
    pub from: usize,
    /// Carried records, `(slot, payload, chain-after)` in append order.
    pub records: Vec<(usize, Vec<f64>, u64)>,
    /// Chain value before the first carried record.
    pub chain_before: u64,
    /// Chain value after the last carried record (the `end` trailer).
    pub chain_after: u64,
}

/// Outcome of one [`ingest_segment`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Records appended to the destination by this ingest.
    pub appended: usize,
    /// Carried records the destination already held (verified against
    /// its chain, then skipped). `appended == 0` means the whole
    /// upload was a no-op replay.
    pub duplicates: usize,
}

fn render_segment_header(header: &JournalHeader, from: usize, count: usize, chain: u64) -> String {
    format!(
        "{SEGMENT_VERSION} campaign={} seed={:016x} tasks={} shard={}/{} from={from} count={count} \
         chain={chain:016x}",
        header.campaign, header.seed, header.tasks, header.shard_index, header.shard_count
    )
}

/// Exports the records `from..` of the journal at `journal_path` as a
/// segment file at `out`. `from == len` is a valid empty segment (a
/// heartbeat upload); `from > len` is [`TransportError::BadRange`].
///
/// # Errors
///
/// [`TransportError::Journal`] when the source fails verification,
/// [`TransportError::BadRange`] for an out-of-range window, plus I/O.
pub fn export_segment(
    journal_path: &Path,
    from: usize,
    out: &Path,
) -> Result<Segment, TransportError> {
    let journal = Journal::load(journal_path)?;
    let len = journal.records.len();
    if from > len {
        return Err(TransportError::BadRange { from, len });
    }
    let chain_before = journal.chain_at(from);
    let mut text = render_segment_header(&journal.header, from, len - from, chain_before);
    text.push('\n');
    let mut chain = chain_before;
    let mut records = Vec::new();
    for (slot, payload) in &journal.records[from..] {
        let body = record_body(*slot, payload);
        chain = chain_step(chain, &body);
        text.push_str(&format!("{body} {chain:016x}\n"));
        records.push((*slot, payload.clone(), chain));
    }
    text.push_str(&format!("end {chain:016x}\n"));
    fs::write(out, text)?;
    Ok(Segment {
        header: journal.header,
        from,
        records,
        chain_before,
        chain_after: chain,
    })
}

/// Parses and fully verifies a segment file: framing, record syntax,
/// and the internal digest chain (`chain=` through every record to the
/// `end` trailer). A segment that passes is internally consistent;
/// whether it *belongs* to a destination is decided at ingest.
///
/// # Errors
///
/// [`TransportError::TornSegment`] for any truncation,
/// [`TransportError::ChainBreak`] when the chain does not re-derive,
/// [`TransportError::BadSegment`] / [`TransportError::VersionSkew`]
/// for framing damage, plus I/O.
pub fn load_segment(path: &Path) -> Result<Segment, TransportError> {
    let raw = fs::read(path)?;
    let raw = String::from_utf8(raw).map_err(|_| TransportError::BadSegment {
        detail: "segment is not UTF-8".to_string(),
    })?;
    // A valid segment ends with a newline-terminated `end` line; any
    // unterminated tail means the upload was cut short.
    let mut lines: Vec<&str> = Vec::new();
    let mut rest = raw.as_str();
    while let Some(pos) = rest.find('\n') {
        lines.push(&rest[..pos]);
        rest = &rest[pos + 1..];
    }
    if !rest.is_empty() {
        return Err(TransportError::TornSegment {
            detail: "unterminated final line".to_string(),
        });
    }

    let header_line = *lines.first().ok_or_else(|| TransportError::TornSegment {
        detail: "empty file".to_string(),
    })?;
    let mut parts = header_line.split_whitespace();
    let version = parts.next().unwrap_or_default();
    if version != SEGMENT_VERSION {
        return Err(TransportError::VersionSkew {
            found: version.to_string(),
        });
    }
    let bad = |what: &str| TransportError::BadSegment {
        detail: format!("{what} in header '{header_line}'"),
    };
    let (mut campaign, mut seed, mut tasks, mut shard) = (None, None, None, None);
    let (mut from, mut count, mut chain) = (None, None, None);
    for part in parts {
        let (key, value) = part.split_once('=').ok_or_else(|| bad("bare token"))?;
        match key {
            "campaign" => campaign = Some(value.to_string()),
            "seed" => seed = Some(u64::from_str_radix(value, 16).map_err(|_| bad("seed"))?),
            "tasks" => tasks = Some(value.parse::<usize>().map_err(|_| bad("tasks"))?),
            "shard" => {
                let (i, n) = value.split_once('/').ok_or_else(|| bad("shard"))?;
                let i: u32 = i.parse().map_err(|_| bad("shard index"))?;
                let n: u32 = n.parse().map_err(|_| bad("shard count"))?;
                if n == 0 || i >= n {
                    return Err(bad("shard range"));
                }
                shard = Some((i, n));
            }
            "from" => from = Some(value.parse::<usize>().map_err(|_| bad("from"))?),
            "count" => count = Some(value.parse::<usize>().map_err(|_| bad("count"))?),
            "chain" => chain = Some(u64::from_str_radix(value, 16).map_err(|_| bad("chain"))?),
            _ => return Err(bad("unknown key")),
        }
    }
    let (shard_index, shard_count) = shard.ok_or_else(|| bad("missing shard"))?;
    let header = JournalHeader {
        campaign: campaign.ok_or_else(|| bad("missing campaign"))?,
        seed: seed.ok_or_else(|| bad("missing seed"))?,
        tasks: tasks.ok_or_else(|| bad("missing tasks"))?,
        shard_index,
        shard_count,
    };
    let from = from.ok_or_else(|| bad("missing from"))?;
    let count = count.ok_or_else(|| bad("missing count"))?;
    let chain_before = chain.ok_or_else(|| bad("missing chain"))?;

    let body_lines = &lines[1..];
    let Some((end_line, record_lines)) = body_lines.split_last() else {
        return Err(TransportError::TornSegment {
            detail: "missing end trailer".to_string(),
        });
    };
    let Some(end_hex) = end_line.strip_prefix("end ") else {
        return Err(TransportError::TornSegment {
            detail: format!("missing end trailer ({} of {count} records present)", record_lines.len() + 1),
        });
    };
    let chain_after = u64::from_str_radix(end_hex, 16).map_err(|_| TransportError::BadSegment {
        detail: format!("unparseable end trailer '{end_line}'"),
    })?;
    if record_lines.len() != count {
        return Err(TransportError::TornSegment {
            detail: format!("{} records present, header promises {count}", record_lines.len()),
        });
    }

    let mut records = Vec::with_capacity(count);
    let mut running = chain_before;
    for (i, line) in record_lines.iter().enumerate() {
        let (slot, payload, recorded_chain) =
            parse_record(line).ok_or_else(|| TransportError::BadSegment {
                detail: format!("unparseable record {i}"),
            })?;
        running = chain_step(running, &record_body(slot, &payload));
        if recorded_chain != running {
            return Err(TransportError::ChainBreak { record: i });
        }
        records.push((slot, payload, recorded_chain));
    }
    if chain_after != running {
        return Err(TransportError::ChainBreak { record: count });
    }

    Ok(Segment {
        header,
        from,
        records,
        chain_before,
        chain_after,
    })
}

/// Splices the segment at `segment_path` into the journal replica at
/// `dest` — creating it (header-only) if absent. Idempotent: records
/// the replica already holds are verified against its chain and
/// skipped; only the genuinely new suffix is appended.
///
/// # Errors
///
/// Any [`load_segment`] error; [`TransportError::SegmentMismatch`]
/// when segment and replica identify different journals;
/// [`TransportError::Gap`] when the segment starts past the replica's
/// end; [`TransportError::ChainBreak`] when the overlap disagrees with
/// the replica's history.
pub fn ingest_segment(dest: &Path, segment_path: &Path) -> Result<IngestOutcome, TransportError> {
    let segment = load_segment(segment_path)?;
    let mut journal = if dest.exists() {
        let journal = Journal::load(dest)?;
        let mismatch = |field: &'static str, found: String, expected: String| {
            Err(TransportError::SegmentMismatch {
                field,
                found,
                expected,
            })
        };
        let (h, d) = (&segment.header, &journal.header);
        if h.campaign != d.campaign {
            return mismatch("campaign", h.campaign.clone(), d.campaign.clone());
        }
        if h.seed != d.seed {
            return mismatch("seed", format!("{:016x}", h.seed), format!("{:016x}", d.seed));
        }
        if h.tasks != d.tasks {
            return mismatch("tasks", h.tasks.to_string(), d.tasks.to_string());
        }
        if (h.shard_index, h.shard_count) != (d.shard_index, d.shard_count) {
            return mismatch(
                "shard",
                format!("{}/{}", h.shard_index, h.shard_count),
                format!("{}/{}", d.shard_index, d.shard_count),
            );
        }
        journal
    } else {
        Journal::create(dest, segment.header.clone())?
    };

    let have = journal.records.len();
    if segment.from > have {
        return Err(TransportError::Gap {
            have,
            from: segment.from,
        });
    }
    // The splice point must sit on the same history: the replica's
    // chain after `from` records has to equal the segment's declared
    // starting chain.
    if journal.chain_at(segment.from) != segment.chain_before {
        return Err(TransportError::ChainBreak { record: 0 });
    }
    // Overlap: records the replica already holds. Chain equality is
    // record equality (the chain commits to slot and payload bits), so
    // comparing the running chain suffices.
    let mut duplicates = 0;
    for (i, (_, _, seg_chain)) in segment.records.iter().enumerate() {
        let pos = segment.from + i;
        if pos < have {
            if journal.chain_at(pos + 1) != *seg_chain {
                return Err(TransportError::ChainBreak { record: i });
            }
            duplicates += 1;
        }
    }
    // New suffix: append through the journal so the replica re-derives
    // and re-verifies the chain itself.
    let mut appended = 0;
    for (i, (slot, payload, seg_chain)) in segment.records.iter().enumerate() {
        if segment.from + i < have {
            continue;
        }
        journal.append(*slot, payload)?;
        if journal.chain() != *seg_chain {
            return Err(TransportError::ChainBreak { record: i });
        }
        appended += 1;
    }
    Ok(IngestOutcome {
        appended,
        duplicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mb-lab-transport-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn sample_journal(dir: &Path, records: usize) -> PathBuf {
        let path = dir.join("src.journal");
        let header = JournalHeader {
            campaign: "transport-test".to_string(),
            seed: 0xFEED,
            tasks: 16,
            shard_index: 0,
            shard_count: 1,
        };
        let mut journal = Journal::create(&path, header).expect("create");
        for slot in 0..records {
            journal
                .append(slot, &[slot as f64, 0.5 + slot as f64])
                .expect("append");
        }
        path
    }

    #[test]
    fn round_trip_replicates_byte_identically() {
        let dir = scratch("round-trip");
        let src = sample_journal(&dir, 5);
        let seg = dir.join("all.seg");
        let meta = export_segment(&src, 0, &seg).expect("export");
        assert_eq!(meta.records.len(), 5);

        let dest = dir.join("replica.journal");
        let out = ingest_segment(&dest, &seg).expect("ingest");
        assert_eq!((out.appended, out.duplicates), (5, 0));
        assert_eq!(fs::read(&src).expect("src"), fs::read(&dest).expect("dest"));
    }

    #[test]
    fn reingest_is_a_noop_and_incremental_segments_splice() {
        let dir = scratch("idempotent");
        let src = sample_journal(&dir, 3);
        let first = dir.join("first.seg");
        export_segment(&src, 0, &first).expect("export prefix");

        let dest = dir.join("replica.journal");
        ingest_segment(&dest, &first).expect("first ingest");
        // Duplicate upload of the same segment: verified, applied as 0.
        let replay = ingest_segment(&dest, &first).expect("replay");
        assert_eq!((replay.appended, replay.duplicates), (0, 3));

        // Source grows; an incremental segment from offset 2 overlaps
        // one record and appends the rest.
        {
            let mut journal = Journal::load(&src).expect("load src");
            for slot in 3..6 {
                journal.append(slot, &[slot as f64, 0.5 + slot as f64]).expect("append");
            }
        }
        let incr = dir.join("incr.seg");
        export_segment(&src, 2, &incr).expect("export incremental");
        let out = ingest_segment(&dest, &incr).expect("incremental ingest");
        assert_eq!((out.appended, out.duplicates), (3, 1));
        assert_eq!(fs::read(&src).expect("src"), fs::read(&dest).expect("dest"));
        // And the incremental upload replays as a pure no-op too.
        let replay = ingest_segment(&dest, &incr).expect("replay incremental");
        assert_eq!((replay.appended, replay.duplicates), (0, 4));
    }

    #[test]
    fn reordered_upload_is_a_gap_until_the_predecessor_lands() {
        let dir = scratch("reorder");
        let src = sample_journal(&dir, 4);
        let head = dir.join("head.seg");
        let tail = dir.join("tail.seg");
        export_segment(&src, 0, &head).expect("head");
        // Grow the source, then cut the tail segment.
        {
            let mut journal = Journal::load(&src).expect("load");
            for slot in 4..8 {
                journal.append(slot, &[slot as f64, 0.0]).expect("append");
            }
        }
        export_segment(&src, 4, &tail).expect("tail");

        let dest = dir.join("replica.journal");
        // Tail first: rejected as a gap, replica untouched.
        match ingest_segment(&dest, &tail) {
            Err(TransportError::Gap { have: 0, from: 4 }) => {}
            other => panic!("expected Gap, got {other:?}"),
        }
        assert!(!dest.exists() || Journal::load(&dest).expect("dest").records.is_empty());
        // Head then tail: converges.
        ingest_segment(&dest, &head).expect("head ingest");
        ingest_segment(&dest, &tail).expect("tail ingest");
        assert_eq!(fs::read(&src).expect("src"), fs::read(&dest).expect("dest"));
    }

    #[test]
    fn torn_segment_is_rejected_wholesale() {
        let dir = scratch("torn");
        let src = sample_journal(&dir, 4);
        let seg = dir.join("all.seg");
        export_segment(&src, 0, &seg).expect("export");
        let full = fs::read_to_string(&seg).expect("read");

        // Drop the end trailer entirely.
        let no_trailer: String = full
            .lines()
            .filter(|l| !l.starts_with("end "))
            .map(|l| format!("{l}\n"))
            .collect();
        fs::write(&seg, no_trailer).expect("write");
        assert!(matches!(
            ingest_segment(&dir.join("a.journal"), &seg),
            Err(TransportError::TornSegment { .. })
        ));

        // Cut mid-line (no final newline).
        fs::write(&seg, &full[..full.len() - 7]).expect("write");
        assert!(matches!(
            ingest_segment(&dir.join("b.journal"), &seg),
            Err(TransportError::TornSegment { .. })
        ));

        // Drop one record line: count disagrees.
        let mut lines: Vec<&str> = full.lines().collect();
        lines.remove(2);
        let dropped: String = lines.iter().map(|l| format!("{l}\n")).collect();
        fs::write(&seg, dropped).expect("write");
        assert!(matches!(
            ingest_segment(&dir.join("c.journal"), &seg),
            Err(TransportError::TornSegment { .. })
        ));
    }

    #[test]
    fn tampered_payload_breaks_the_chain() {
        let dir = scratch("tamper");
        let src = sample_journal(&dir, 3);
        let seg = dir.join("all.seg");
        export_segment(&src, 0, &seg).expect("export");
        let tampered = fs::read_to_string(&seg)
            .expect("read")
            .replacen("r 1 ", "r 2 ", 1);
        fs::write(&seg, tampered).expect("write");
        assert!(matches!(
            load_segment(&seg),
            Err(TransportError::ChainBreak { record: 1 })
        ));
    }

    #[test]
    fn foreign_segment_is_refused_by_the_replica() {
        let dir = scratch("foreign");
        let src = sample_journal(&dir, 2);
        let seg = dir.join("all.seg");
        export_segment(&src, 0, &seg).expect("export");

        let other = dir.join("other.journal");
        Journal::create(
            &other,
            JournalHeader {
                campaign: "some-other-campaign".to_string(),
                seed: 0xFEED,
                tasks: 16,
                shard_index: 0,
                shard_count: 1,
            },
        )
        .expect("create");
        assert!(matches!(
            ingest_segment(&other, &seg),
            Err(TransportError::SegmentMismatch { field: "campaign", .. })
        ));
    }

    #[test]
    fn divergent_history_is_a_chain_break_not_an_overwrite() {
        let dir = scratch("diverge");
        let src = sample_journal(&dir, 3);
        let seg = dir.join("all.seg");
        export_segment(&src, 0, &seg).expect("export");

        // A replica with the same identity but different record
        // content must refuse the splice.
        let dest = dir.join("replica.journal");
        let header = Journal::load(&src).expect("load").header;
        let mut journal = Journal::create(&dest, header).expect("create");
        journal.append(0, &[99.0, 99.5]).expect("append");
        assert!(matches!(
            ingest_segment(&dest, &seg),
            Err(TransportError::ChainBreak { .. })
        ));
        // And the replica kept its own record.
        assert_eq!(Journal::load(&dest).expect("reload").records.len(), 1);
    }

    #[test]
    fn empty_segment_is_a_valid_heartbeat() {
        let dir = scratch("empty");
        let src = sample_journal(&dir, 2);
        let seg = dir.join("empty.seg");
        let meta = export_segment(&src, 2, &seg).expect("export empty");
        assert!(meta.records.is_empty());

        // Against a fresh replica it is a gap (nothing to splice onto)…
        assert!(matches!(
            ingest_segment(&dir.join("fresh.journal"), &seg),
            Err(TransportError::Gap { .. })
        ));
        // …against a caught-up replica it is a verified no-op.
        let full = dir.join("full.seg");
        export_segment(&src, 0, &full).expect("export full");
        let dest = dir.join("replica.journal");
        ingest_segment(&dest, &full).expect("ingest full");
        let out = ingest_segment(&dest, &seg).expect("ingest empty");
        assert_eq!((out.appended, out.duplicates), (0, 0));
        // Out-of-range export is refused.
        assert!(matches!(
            export_segment(&src, 3, &dir.join("oob.seg")),
            Err(TransportError::BadRange { from: 3, len: 2 })
        ));
    }
}
