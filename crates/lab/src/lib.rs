//! `mb-lab` — the persistent, sharded experiment driver.
//!
//! Every figure and table of the reproduction is a deterministic sweep:
//! an ordered list of independent slot measurements reduced into a
//! value stream whose 64-bit digest is pinned in the test suite. This
//! crate runs those sweeps as *campaigns* that survive process death
//! and partition across processes:
//!
//! * [`journal`] — the append-only, digest-chained journal file each
//!   shard writes one record to per completed slot, with torn-tail
//!   crash recovery and hard errors on version skew or chain breaks;
//! * [`campaign`] — the registry binding campaign names to the slot
//!   APIs of the figure runners and to their pinned digests;
//! * [`driver`] — replay + [`mb_simcore::par::Checkpoint`] resume +
//!   modulo sharding (`slot % N == i`) + journal merge;
//! * [`transport`] — idempotent segment export/ingest between journal
//!   replicas, the stand-in for per-host uploads;
//! * [`supervise`] — the shard-family babysitter: restart-on-crash
//!   with seeded bounded backoff, clock-free hang detection and
//!   poison-slot quarantine, reporting a machine-readable
//!   [`supervise::SuperviseReport`];
//! * [`lock`] — pid-liveness ownership lockfiles so journals, family
//!   dirs and server data dirs have exactly one live writer (typed
//!   exit-5 refusal, stale locks stolen from dead owners);
//! * [`protocol`] — the versioned `mbsrv1` line protocol of the
//!   service mode: typed frames, canonical renderings, hard typed
//!   rejection of malformed/oversized/truncated input;
//! * [`serve`] — the always-on campaign service: a TCP supervisor
//!   multiplexing many shard families over a bounded worker pool,
//!   with typed `busy` backpressure, streaming `watch` progress and
//!   resume-on-restart from persisted job state;
//! * [`client`] — the client half: submit/status/watch/cancel/fetch
//!   over the socket, mapping typed server errors back to the
//!   documented exit codes.
//!
//! The determinism contract is the workspace-wide one: a campaign run
//! killed at any instant and resumed, or split across any shard count
//! and merged, reproduces the monolithic in-process sweep **bit for
//! bit** — the integration tests prove it against the pinned figure
//! digests under multiple `MB_THREADS` values.

pub mod campaign;
pub mod client;
pub mod driver;
pub mod journal;
pub mod lock;
pub mod protocol;
pub mod serve;
pub mod supervise;
pub mod transport;

pub use campaign::{digest, Campaign};
pub use driver::{digest_journal, expected_header, run_campaign, RunOutcome, Shard};
pub use journal::{merge, merge_allowing, Journal, JournalError, JournalHeader};
pub use lock::{LockError, PathLock};
pub use protocol::{JobState, JobStatus, ProtocolError, Reply, Request};
pub use serve::{serve, ServeError, ServePolicy, ServeSummary};
pub use supervise::{supervise, supervise_cancellable, SupervisePolicy, SuperviseReport};
pub use transport::{export_segment, ingest_segment, IngestOutcome, TransportError};
