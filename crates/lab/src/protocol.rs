//! `mbsrv1` — the versioned line protocol of `mb-lab serve`.
//!
//! One frame per line, UTF-8, `\n`-terminated, at most
//! [`MAX_FRAME_BYTES`] bytes including the terminator. Every frame
//! leads with the version token (`mbsrv1`), then a verb, then
//! `key=value` fields in a fixed canonical order:
//!
//! ```text
//! mbsrv1 submit campaign=fig3-quick shards=2
//! mbsrv1 submitted job=j1 queued=1
//! mbsrv1 busy queued=8 cap=8
//! mbsrv1 progress job=j1 done=3 total=9 eta_ms=1200
//! mbsrv1 done job=j1 state=done digest=0xd0d5f716d0b30356 checked=true
//! mbsrv1 err code=6 msg=bare token 'x' (want key=value)
//! ```
//!
//! The free-text fields (`msg`, `detail`) are always last and run to
//! the end of the line, so they may contain spaces but never a
//! newline. Everything else is machine-checked: names are
//! `[a-z0-9_-]{1,64}`, counters are decimal, digests are
//! `0x`-prefixed 16-digit hex — exactly the renderings the journal
//! and transport layers already pin.
//!
//! The failure contract mirrors the rest of the workspace: a frame
//! that cannot be parsed is a typed [`ProtocolError`] (never a
//! panic), the server answers it with `err code=<exit code>` and the
//! client process exits with that same code — wire faults are
//! [`exit_code::PROTOCOL`] (6), an unreachable or load-shedding
//! server is [`exit_code::UNAVAILABLE`] (7).
//!
//! [`exit_code::PROTOCOL`]: mb_simcore::error::exit_code::PROTOCOL
//! [`exit_code::UNAVAILABLE`]: mb_simcore::error::exit_code::UNAVAILABLE

use std::fmt;
use std::io::{BufRead, Read, Write};

/// The version token every frame must lead with.
pub const PROTOCOL_VERSION: &str = "mbsrv1";

/// Hard cap on one frame, terminator included. Generous for every
/// canonical frame (the longest is an `err` with a one-line message)
/// while bounding what one connection can make the server buffer.
pub const MAX_FRAME_BYTES: usize = 4096;

/// Longest accepted name (campaign or job id).
pub const MAX_NAME_BYTES: usize = 64;

/// Most shards one submission may ask for.
pub const MAX_SHARDS: u32 = 4096;

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket/stream failure.
    Io(std::io::Error),
    /// The frame's leading token is not [`PROTOCOL_VERSION`].
    VersionSkew {
        /// The token actually found.
        found: String,
    },
    /// The frame parsed as a line but not as a frame: unknown verb,
    /// missing/duplicate/unknown field, malformed value, bare token.
    BadFrame {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The line exceeded [`MAX_FRAME_BYTES`] before its terminator.
    Oversized {
        /// The configured cap.
        limit: usize,
    },
    /// The stream ended mid-frame (bytes after the last terminator).
    Truncated {
        /// Unterminated bytes left at EOF.
        got: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol I/O error: {e}"),
            ProtocolError::VersionSkew { found } => write!(
                f,
                "protocol version skew: found '{found}', this build speaks '{PROTOCOL_VERSION}'"
            ),
            ProtocolError::BadFrame { detail } => write!(f, "malformed frame: {detail}"),
            ProtocolError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte line cap")
            }
            ProtocolError::Truncated { got } => {
                write!(f, "stream truncated mid-frame ({got} unterminated byte(s))")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl ProtocolError {
    /// The exit code (and on-wire `err code=`) for this fault: socket
    /// failures mean the peer is unavailable, everything else is a
    /// wire-format fault.
    pub fn exit_code(&self) -> u8 {
        use mb_simcore::error::exit_code;
        match self {
            ProtocolError::Io(_) => exit_code::UNAVAILABLE,
            ProtocolError::VersionSkew { .. }
            | ProtocolError::BadFrame { .. }
            | ProtocolError::Oversized { .. }
            | ProtocolError::Truncated { .. } => exit_code::PROTOCOL,
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker slot.
    Queued,
    /// A worker is supervising its shard family right now.
    Running,
    /// Converged (digest present unless slots were quarantined).
    Done,
    /// The family failed; `detail` carries the postmortem line.
    Failed,
    /// Cancelled by a client; journals intact and resumable.
    Cancelled,
}

impl JobState {
    /// The on-wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses the on-wire token.
    pub fn parse(text: &str) -> Option<JobState> {
        match text {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// A client-to-server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enqueue a shard family of `campaign` with `shards` workers.
    Submit {
        /// Registered campaign name.
        campaign: String,
        /// Worker count for the family.
        shards: u32,
    },
    /// Snapshot one job (or all jobs when `job` is `None`).
    Status {
        /// Job to snapshot; `None` lists every job.
        job: Option<String>,
    },
    /// Stream progress frames until the job reaches a terminal state.
    Watch {
        /// Job to follow.
        job: String,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job to cancel.
        job: String,
    },
    /// Stream the job's merged journal as one `mbseg1` segment.
    Fetch {
        /// Job whose results to fetch.
        job: String,
    },
    /// Liveness probe.
    Ping,
    /// Stop accepting work, finish running jobs, exit.
    Shutdown,
}

/// One job's snapshot, as carried by `status` replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Server-assigned job id.
    pub job: String,
    /// Campaign name.
    pub campaign: String,
    /// Worker count.
    pub shards: u32,
    /// Current lifecycle state.
    pub state: JobState,
    /// Slots journaled so far.
    pub done: usize,
    /// Slots in the campaign.
    pub total: usize,
    /// Merged digest, once converged and fully measured.
    pub digest: Option<u64>,
}

/// A server-to-client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Submission accepted.
    Submitted {
        /// Assigned job id.
        job: String,
        /// Queue depth after the submission.
        queued: usize,
    },
    /// Typed backpressure: the job queue is at its bound.
    Busy {
        /// Jobs currently queued.
        queued: usize,
        /// The configured queue bound.
        cap: usize,
    },
    /// Typed failure; `code` follows the exit-code contract.
    Err {
        /// Exit code the client should die with.
        code: u8,
        /// Human-readable description (runs to end of line).
        msg: String,
    },
    /// One job snapshot (`status` sends one per job).
    Job(JobStatus),
    /// Terminator after a `status` listing.
    End {
        /// Snapshots sent before this frame.
        count: usize,
    },
    /// One `watch` heartbeat.
    Progress {
        /// Job being watched.
        job: String,
        /// Slots journaled so far.
        done: usize,
        /// Slots in the campaign.
        total: usize,
        /// Live estimate of time to convergence, when computable.
        eta_ms: Option<u64>,
    },
    /// Terminal frame of a `watch` stream.
    Done {
        /// The watched job.
        job: String,
        /// Terminal state.
        state: JobState,
        /// Merged digest (fully measured campaigns only).
        digest: Option<u64>,
        /// Whether the digest was checked against a registry pin.
        checked: bool,
        /// Postmortem / degradation note (runs to end of line).
        detail: Option<String>,
    },
    /// Header before `lines` raw `mbseg1` lines follow verbatim.
    Segment {
        /// Raw segment lines that follow this frame.
        lines: usize,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `shutdown`.
    Stopping {
        /// Jobs still running (they will be drained).
        running: usize,
    },
}

/// Whether `text` is a legal campaign/job name on the wire.
fn valid_name(text: &str) -> bool {
    !text.is_empty()
        && text.len() <= MAX_NAME_BYTES
        && text
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
}

fn bad(detail: impl Into<String>) -> ProtocolError {
    ProtocolError::BadFrame {
        detail: detail.into(),
    }
}

/// Keys whose value runs to the end of the line (free text).
const TAIL_KEYS: [&str; 2] = ["msg", "detail"];

/// Splits `rest` into `key=value` fields. Tail keys swallow the rest
/// of the line; every other value is one whitespace-delimited token.
fn parse_fields(rest: &str) -> Result<Vec<(String, String)>, ProtocolError> {
    let mut fields: Vec<(String, String)> = Vec::new();
    let mut offset = 0usize;
    while offset < rest.len() {
        let chunk = &rest[offset..];
        let trimmed = chunk.trim_start_matches(' ');
        if trimmed.is_empty() {
            break;
        }
        offset += chunk.len() - trimmed.len();
        let token_end = trimmed.find(' ').unwrap_or(trimmed.len());
        let token = &trimmed[..token_end];
        let Some(eq) = token.find('=') else {
            return Err(bad(format!("bare token '{token}' (want key=value)")));
        };
        let key = &token[..eq];
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
            return Err(bad(format!("bad field key in '{token}'")));
        }
        if fields.iter().any(|(k, _)| k == key) {
            return Err(bad(format!("duplicate field '{key}'")));
        }
        if TAIL_KEYS.contains(&key) {
            let value = &trimmed[eq + 1..];
            fields.push((key.to_string(), value.to_string()));
            break;
        }
        let value = &token[eq + 1..];
        if value.is_empty() {
            return Err(bad(format!("empty value for field '{key}'")));
        }
        fields.push((key.to_string(), value.to_string()));
        offset += token_end;
    }
    Ok(fields)
}

/// Consumes the fields of one frame with exactly the sets given:
/// every required key present, no key outside required+optional.
struct Fields {
    inner: Vec<(String, String)>,
}

impl Fields {
    fn parse(rest: &str, verb: &str, required: &[&str], optional: &[&str]) -> Result<Fields, ProtocolError> {
        let inner = parse_fields(rest)?;
        for key in required {
            if !inner.iter().any(|(k, _)| k == key) {
                return Err(bad(format!("{verb} frame is missing field '{key}'")));
            }
        }
        for (key, _) in &inner {
            if !required.contains(&key.as_str()) && !optional.contains(&key.as_str()) {
                return Err(bad(format!("{verb} frame has unknown field '{key}'")));
            }
        }
        Ok(Fields { inner })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.inner
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn name(&self, key: &str) -> Result<String, ProtocolError> {
        let value = self.get(key).expect("required key checked in parse");
        if !valid_name(value) {
            return Err(bad(format!(
                "bad name '{value}' for '{key}' (want [a-z0-9_-]{{1,{MAX_NAME_BYTES}}})"
            )));
        }
        Ok(value.to_string())
    }

    fn counter(&self, key: &str) -> Result<usize, ProtocolError> {
        let value = self.get(key).expect("required key checked in parse");
        value
            .parse()
            .map_err(|_| bad(format!("bad counter '{value}' for '{key}'")))
    }

    fn counter_u64(&self, key: &str) -> Result<u64, ProtocolError> {
        let value = self.get(key).expect("required key checked in parse");
        value
            .parse()
            .map_err(|_| bad(format!("bad counter '{value}' for '{key}'")))
    }

    fn digest(&self, key: &str) -> Result<u64, ProtocolError> {
        let value = self.get(key).expect("caller checked presence");
        let hex = value
            .strip_prefix("0x")
            .ok_or_else(|| bad(format!("bad digest '{value}' (want 0xHEX)")))?;
        u64::from_str_radix(hex, 16).map_err(|_| bad(format!("bad digest '{value}'")))
    }

    fn state(&self, key: &str) -> Result<JobState, ProtocolError> {
        let value = self.get(key).expect("required key checked in parse");
        JobState::parse(value).ok_or_else(|| bad(format!("bad job state '{value}'")))
    }
}

/// Strips and checks the version token, returning `(verb, rest)`.
fn split_verb(line: &str) -> Result<(&str, &str), ProtocolError> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let (version, rest) = line.split_once(' ').unwrap_or((line, ""));
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionSkew {
            found: version.to_string(),
        });
    }
    let rest = rest.trim_start_matches(' ');
    let (verb, fields) = rest.split_once(' ').unwrap_or((rest, ""));
    if verb.is_empty() {
        return Err(bad("frame has no verb"));
    }
    Ok((verb, fields))
}

impl Request {
    /// Renders the canonical frame (no terminator).
    pub fn render(&self) -> String {
        match self {
            Request::Submit { campaign, shards } => {
                format!("{PROTOCOL_VERSION} submit campaign={campaign} shards={shards}")
            }
            Request::Status { job: None } => format!("{PROTOCOL_VERSION} status"),
            Request::Status { job: Some(job) } => format!("{PROTOCOL_VERSION} status job={job}"),
            Request::Watch { job } => format!("{PROTOCOL_VERSION} watch job={job}"),
            Request::Cancel { job } => format!("{PROTOCOL_VERSION} cancel job={job}"),
            Request::Fetch { job } => format!("{PROTOCOL_VERSION} fetch job={job}"),
            Request::Ping => format!("{PROTOCOL_VERSION} ping"),
            Request::Shutdown => format!("{PROTOCOL_VERSION} shutdown"),
        }
    }

    /// Parses one frame line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::VersionSkew`] or [`ProtocolError::BadFrame`];
    /// never panics on any input.
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let (verb, rest) = split_verb(line)?;
        match verb {
            "submit" => {
                let f = Fields::parse(rest, verb, &["campaign", "shards"], &[])?;
                let campaign = f.name("campaign")?;
                let shards = f.counter("shards")? as u64;
                if shards == 0 || shards > u64::from(MAX_SHARDS) {
                    return Err(bad(format!("shards must be 1..={MAX_SHARDS}, got {shards}")));
                }
                Ok(Request::Submit {
                    campaign,
                    shards: shards as u32,
                })
            }
            "status" => {
                let f = Fields::parse(rest, verb, &[], &["job"])?;
                let job = match f.get("job") {
                    Some(_) => Some(f.name("job")?),
                    None => None,
                };
                Ok(Request::Status { job })
            }
            "watch" | "cancel" | "fetch" => {
                let f = Fields::parse(rest, verb, &["job"], &[])?;
                let job = f.name("job")?;
                Ok(match verb {
                    "watch" => Request::Watch { job },
                    "cancel" => Request::Cancel { job },
                    _ => Request::Fetch { job },
                })
            }
            "ping" => {
                Fields::parse(rest, verb, &[], &[])?;
                Ok(Request::Ping)
            }
            "shutdown" => {
                Fields::parse(rest, verb, &[], &[])?;
                Ok(Request::Shutdown)
            }
            other => Err(bad(format!("unknown request verb '{other}'"))),
        }
    }
}

impl Reply {
    /// Renders the canonical frame (no terminator).
    pub fn render(&self) -> String {
        match self {
            Reply::Submitted { job, queued } => {
                format!("{PROTOCOL_VERSION} submitted job={job} queued={queued}")
            }
            Reply::Busy { queued, cap } => {
                format!("{PROTOCOL_VERSION} busy queued={queued} cap={cap}")
            }
            Reply::Err { code, msg } => {
                format!("{PROTOCOL_VERSION} err code={code} msg={}", sanitize(msg))
            }
            Reply::Job(s) => {
                let mut out = format!(
                    "{PROTOCOL_VERSION} job id={} campaign={} shards={} state={} done={} total={}",
                    s.job,
                    s.campaign,
                    s.shards,
                    s.state.as_str(),
                    s.done,
                    s.total
                );
                if let Some(d) = s.digest {
                    out.push_str(&format!(" digest={d:#018x}"));
                }
                out
            }
            Reply::End { count } => format!("{PROTOCOL_VERSION} end count={count}"),
            Reply::Progress {
                job,
                done,
                total,
                eta_ms,
            } => {
                let mut out =
                    format!("{PROTOCOL_VERSION} progress job={job} done={done} total={total}");
                if let Some(eta) = eta_ms {
                    out.push_str(&format!(" eta_ms={eta}"));
                }
                out
            }
            Reply::Done {
                job,
                state,
                digest,
                checked,
                detail,
            } => {
                let mut out = format!("{PROTOCOL_VERSION} done job={job} state={}", state.as_str());
                if let Some(d) = digest {
                    out.push_str(&format!(" digest={d:#018x} checked={checked}"));
                }
                if let Some(detail) = detail {
                    out.push_str(&format!(" detail={}", sanitize(detail)));
                }
                out
            }
            Reply::Segment { lines } => format!("{PROTOCOL_VERSION} segment lines={lines}"),
            Reply::Pong => format!("{PROTOCOL_VERSION} pong"),
            Reply::Stopping { running } => {
                format!("{PROTOCOL_VERSION} stopping running={running}")
            }
        }
    }

    /// Parses one frame line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::VersionSkew`] or [`ProtocolError::BadFrame`];
    /// never panics on any input.
    pub fn parse(line: &str) -> Result<Reply, ProtocolError> {
        let (verb, rest) = split_verb(line)?;
        match verb {
            "submitted" => {
                let f = Fields::parse(rest, verb, &["job", "queued"], &[])?;
                Ok(Reply::Submitted {
                    job: f.name("job")?,
                    queued: f.counter("queued")?,
                })
            }
            "busy" => {
                let f = Fields::parse(rest, verb, &["queued", "cap"], &[])?;
                Ok(Reply::Busy {
                    queued: f.counter("queued")?,
                    cap: f.counter("cap")?,
                })
            }
            "err" => {
                let f = Fields::parse(rest, verb, &["code", "msg"], &[])?;
                let code = f.counter("code")?;
                if code == 0 || code > 255 {
                    return Err(bad(format!("err code {code} outside 1..=255")));
                }
                Ok(Reply::Err {
                    code: code as u8,
                    msg: f.get("msg").expect("required").to_string(),
                })
            }
            "job" => {
                let f = Fields::parse(
                    rest,
                    verb,
                    &["id", "campaign", "shards", "state", "done", "total"],
                    &["digest"],
                )?;
                let digest = match f.get("digest") {
                    Some(_) => Some(f.digest("digest")?),
                    None => None,
                };
                Ok(Reply::Job(JobStatus {
                    job: f.name("id")?,
                    campaign: f.name("campaign")?,
                    shards: f.counter("shards")? as u32,
                    state: f.state("state")?,
                    done: f.counter("done")?,
                    total: f.counter("total")?,
                    digest,
                }))
            }
            "end" => {
                let f = Fields::parse(rest, verb, &["count"], &[])?;
                Ok(Reply::End {
                    count: f.counter("count")?,
                })
            }
            "progress" => {
                let f = Fields::parse(rest, verb, &["job", "done", "total"], &["eta_ms"])?;
                let eta_ms = match f.get("eta_ms") {
                    Some(_) => Some(f.counter_u64("eta_ms")?),
                    None => None,
                };
                Ok(Reply::Progress {
                    job: f.name("job")?,
                    done: f.counter("done")?,
                    total: f.counter("total")?,
                    eta_ms,
                })
            }
            "done" => {
                let f = Fields::parse(
                    rest,
                    verb,
                    &["job", "state"],
                    &["digest", "checked", "detail"],
                )?;
                let digest = match f.get("digest") {
                    Some(_) => Some(f.digest("digest")?),
                    None => None,
                };
                let checked = match f.get("checked") {
                    None => false,
                    Some("true") => true,
                    Some("false") => false,
                    Some(other) => return Err(bad(format!("bad checked '{other}'"))),
                };
                Ok(Reply::Done {
                    job: f.name("job")?,
                    state: f.state("state")?,
                    digest,
                    checked,
                    detail: f.get("detail").map(str::to_string),
                })
            }
            "segment" => {
                let f = Fields::parse(rest, verb, &["lines"], &[])?;
                Ok(Reply::Segment {
                    lines: f.counter("lines")?,
                })
            }
            "pong" => {
                Fields::parse(rest, verb, &[], &[])?;
                Ok(Reply::Pong)
            }
            "stopping" => {
                let f = Fields::parse(rest, verb, &["running"], &[])?;
                Ok(Reply::Stopping {
                    running: f.counter("running")?,
                })
            }
            other => Err(bad(format!("unknown reply verb '{other}'"))),
        }
    }
}

/// Free text must stay one line; fold any embedded terminator.
fn sanitize(text: &str) -> String {
    text.replace(['\n', '\r'], "; ")
}

/// Reads one frame line, enforcing the byte cap. `Ok(None)` is a
/// clean EOF between frames.
///
/// # Errors
///
/// [`ProtocolError::Oversized`] past the cap,
/// [`ProtocolError::Truncated`] on EOF mid-line, or the underlying
/// [`ProtocolError::Io`].
pub fn read_frame<R: BufRead>(reader: &mut R) -> Result<Option<String>, ProtocolError> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(MAX_FRAME_BYTES as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        if buf.len() > MAX_FRAME_BYTES {
            return Err(ProtocolError::Oversized {
                limit: MAX_FRAME_BYTES,
            });
        }
        return Err(ProtocolError::Truncated { got: buf.len() });
    }
    buf.pop();
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| bad("frame is not UTF-8"))
}

/// Writes one frame line (terminator added) and flushes.
///
/// # Errors
///
/// The underlying [`ProtocolError::Io`].
pub fn write_frame<W: Write>(writer: &mut W, frame: &str) -> Result<(), ProtocolError> {
    writer.write_all(frame.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn requests_round_trip_canonically() {
        let frames = [
            Request::Submit {
                campaign: "fig3-quick".to_string(),
                shards: 2,
            },
            Request::Status { job: None },
            Request::Status {
                job: Some("j1".to_string()),
            },
            Request::Watch {
                job: "j1".to_string(),
            },
            Request::Ping,
            Request::Shutdown,
        ];
        for frame in frames {
            let line = frame.render();
            assert_eq!(Request::parse(&line).expect("round trip"), frame, "{line}");
        }
    }

    #[test]
    fn tail_fields_keep_their_spaces() {
        let reply = Reply::Err {
            code: 6,
            msg: "bare token 'x' (want key=value)".to_string(),
        };
        let line = reply.render();
        assert_eq!(Reply::parse(&line).expect("round trip"), reply);
    }

    #[test]
    fn version_skew_and_bare_tokens_are_typed() {
        assert!(matches!(
            Request::parse("mbsrv0 ping"),
            Err(ProtocolError::VersionSkew { .. })
        ));
        assert!(matches!(
            Request::parse("mbsrv1 submit fig3-quick"),
            Err(ProtocolError::BadFrame { .. })
        ));
    }

    #[test]
    fn read_frame_enforces_the_line_cap() {
        let long = vec![b'a'; MAX_FRAME_BYTES + 10];
        let mut r = BufReader::new(&long[..]);
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtocolError::Oversized { .. })
        ));
        let mut r = BufReader::new(&b"mbsrv1 ping"[..]);
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtocolError::Truncated { got: 11 })
        ));
        let mut r = BufReader::new(&b""[..]);
        assert!(matches!(read_frame(&mut r), Ok(None)));
    }
}
