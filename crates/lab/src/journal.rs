//! The append-only experiment journal.
//!
//! One journal file persists one shard's progress through one campaign.
//! The format is a hand-rolled line protocol (the workspace's `serde` is
//! an offline marker-trait stand-in, so nothing here round-trips through
//! a serialization framework):
//!
//! ```text
//! mblab1 campaign=fig3-quick seed=000000000005ca1e tasks=9 shard=0/1
//! r 0 3fe8a0b2c4d6e8f0 9c1d2e3f4a5b6c7d
//! r 3 4010203040506070,4111213141516171 0123456789abcdef
//! ```
//!
//! * The **header** carries the format version (`mblab1`), the campaign
//!   name, the experiment seed, the task count and this journal's shard
//!   assignment. Any disagreement with what the driver expects — or an
//!   unknown version token — is a hard error, never a silent skip: a
//!   journal from a different campaign must not leak results into this
//!   one.
//! * Each **record** (`r`) stores one completed slot: its index, the
//!   payload as comma-separated hex `f64` bit patterns (bit-exact by
//!   construction, no decimal round-trip), and a chained digest.
//! * The **chain** field makes the file tamper- and truncation-evident:
//!   each record's chain value mixes the previous chain value with a
//!   hash of the record body, seeded by a hash of the header. A record
//!   whose chain does not re-derive is a hard error ([`JournalError::ChainMismatch`]).
//!
//! The single deliberate soft spot is the **torn tail**: a process
//! killed mid-`write` leaves a final line with no terminating newline
//! (or half a line). That record is dropped on load and physically
//! truncated away on the next append — losing the one in-flight
//! measurement is exactly the crash semantics the resume contract
//! expects, and [`Journal::load`] reports it via `torn_tail` so drivers
//! can log the recovery.

use std::fmt;
use std::fs;
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};

/// Format version token leading every journal header.
pub const FORMAT_VERSION: &str = "mblab1";

/// Everything that can go wrong reading or merging journals.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file's version token is not [`FORMAT_VERSION`].
    VersionSkew {
        /// The token actually found.
        found: String,
    },
    /// The header could not be parsed at all.
    BadHeader {
        /// The offending line.
        line: String,
    },
    /// The header disagrees with what the driver expected (campaign,
    /// seed, task count or shard assignment).
    HeaderMismatch {
        /// Which field disagreed.
        field: &'static str,
        /// Value in the file.
        found: String,
        /// Value the driver expected.
        expected: String,
    },
    /// A fully terminated record line failed to parse.
    BadRecord {
        /// 1-based line number.
        line_number: usize,
    },
    /// A record's chained digest does not re-derive from its
    /// predecessors — the file was edited, reordered or corrupted
    /// somewhere before its final line.
    ChainMismatch {
        /// 1-based line number of the first bad record.
        line_number: usize,
    },
    /// The same slot appears twice.
    DuplicateSlot {
        /// The repeated slot index.
        slot: usize,
    },
    /// A record names a slot outside `0..tasks` or one this shard does
    /// not own.
    ForeignSlot {
        /// The offending slot index.
        slot: usize,
    },
    /// A merge input set does not form one complete shard family
    /// (`i/N` for every `i in 0..N`, all over the same campaign).
    BadShardFamily {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A merge is missing completed slots.
    IncompleteMerge {
        /// Slots with no record in any input shard.
        missing: Vec<usize>,
    },
    /// A record's payload width disagrees with the campaign's
    /// fixed-width slot contract — e.g. a truncated six-counter faulted
    /// payload. Surfaced before the payload can reach a finalizer that
    /// would slice-index it.
    BadPayload {
        /// The offending slot index.
        slot: usize,
        /// Number of values actually recorded.
        got: usize,
        /// Width the campaign's slots produce.
        expected: usize,
    },
    /// A campaign slot panicked inside the contained sweep. The journal
    /// itself is healthy — every slot completed before the panic is
    /// persisted — so a supervisor may restart the worker and resume,
    /// quarantining the slot if it keeps crashing.
    SlotFailed {
        /// The failing slot index.
        slot: usize,
        /// The contained panic, rendered (label + payload text).
        detail: String,
    },
    /// The journal's ownership lock is held by a live process — a
    /// second writer would interleave appends and break the chain, so
    /// the run refuses to start (see [`crate::lock`]).
    Locked(crate::lock::LockError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::VersionSkew { found } => write!(
                f,
                "journal version skew: found '{found}', this build reads '{FORMAT_VERSION}'"
            ),
            JournalError::BadHeader { line } => write!(f, "unparseable journal header: '{line}'"),
            JournalError::HeaderMismatch {
                field,
                found,
                expected,
            } => write!(
                f,
                "journal header mismatch: {field} is '{found}', expected '{expected}'"
            ),
            JournalError::BadRecord { line_number } => {
                write!(f, "unparseable journal record at line {line_number}")
            }
            JournalError::ChainMismatch { line_number } => write!(
                f,
                "journal digest chain broken at line {line_number}: file was modified or corrupted"
            ),
            JournalError::DuplicateSlot { slot } => {
                write!(f, "journal records slot {slot} twice")
            }
            JournalError::ForeignSlot { slot } => {
                write!(f, "journal records slot {slot}, which is out of range or unowned")
            }
            JournalError::BadShardFamily { detail } => {
                write!(f, "merge inputs are not one shard family: {detail}")
            }
            JournalError::IncompleteMerge { missing } => {
                write!(f, "merge is missing {} slot(s): {missing:?}", missing.len())
            }
            JournalError::BadPayload {
                slot,
                got,
                expected,
            } => write!(
                f,
                "journal records a {got}-value payload for slot {slot}, campaign slots are \
                 {expected} values wide"
            ),
            // The leading "slot <n> failed:" form is parsed by the
            // supervisor's poison-slot tracker — keep it stable.
            JournalError::SlotFailed { slot, detail } => {
                write!(f, "slot {slot} failed: {detail}")
            }
            JournalError::Locked(e) => write!(f, "{e}"),
        }
    }
}

impl JournalError {
    /// The process exit code a driver should report for this error
    /// (see [`mb_simcore::error::exit_code`]): corruption of the
    /// on-disk format maps to [`exit_code::CORRUPT`], a contained slot
    /// panic to [`exit_code::SLOT_PANIC`], and disagreements between a
    /// healthy file and the invocation (wrong campaign, inconsistent
    /// shard family, unreadable path) to [`exit_code::ENV_MISCONFIG`].
    ///
    /// [`exit_code::CORRUPT`]: mb_simcore::error::exit_code::CORRUPT
    /// [`exit_code::SLOT_PANIC`]: mb_simcore::error::exit_code::SLOT_PANIC
    /// [`exit_code::ENV_MISCONFIG`]: mb_simcore::error::exit_code::ENV_MISCONFIG
    pub fn exit_code(&self) -> u8 {
        use mb_simcore::error::exit_code;
        match self {
            JournalError::VersionSkew { .. }
            | JournalError::BadHeader { .. }
            | JournalError::BadRecord { .. }
            | JournalError::ChainMismatch { .. }
            | JournalError::DuplicateSlot { .. }
            | JournalError::ForeignSlot { .. }
            | JournalError::BadPayload { .. } => exit_code::CORRUPT,
            JournalError::SlotFailed { .. } => exit_code::SLOT_PANIC,
            JournalError::Io(_)
            | JournalError::HeaderMismatch { .. }
            | JournalError::BadShardFamily { .. }
            | JournalError::IncompleteMerge { .. } => exit_code::ENV_MISCONFIG,
            JournalError::Locked(e) => e.exit_code(),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The identity a journal claims in its header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Campaign name the records belong to.
    pub campaign: String,
    /// Experiment seed the campaign derives its slot seeds from.
    pub seed: u64,
    /// Total slot count of the campaign (across all shards).
    pub tasks: usize,
    /// This journal's shard index.
    pub shard_index: u32,
    /// Total shard count of the partition this journal belongs to.
    pub shard_count: u32,
}

impl JournalHeader {
    /// Renders the header line (without the trailing newline).
    pub(crate) fn render(&self) -> String {
        format!(
            "{FORMAT_VERSION} campaign={} seed={:016x} tasks={} shard={}/{}",
            self.campaign, self.seed, self.tasks, self.shard_index, self.shard_count
        )
    }

    /// Whether this header owns `slot` under the modulo partition.
    pub fn owns_slot(&self, slot: usize) -> bool {
        slot % self.shard_count as usize == self.shard_index as usize
    }

    fn parse(line: &str) -> Result<JournalHeader, JournalError> {
        let mut parts = line.split_whitespace();
        let version = parts.next().unwrap_or_default();
        if version != FORMAT_VERSION {
            return Err(JournalError::VersionSkew {
                found: version.to_string(),
            });
        }
        let bad = || JournalError::BadHeader {
            line: line.to_string(),
        };
        let mut campaign = None;
        let mut seed = None;
        let mut tasks = None;
        let mut shard = None;
        for part in parts {
            let (key, value) = part.split_once('=').ok_or_else(bad)?;
            match key {
                "campaign" => campaign = Some(value.to_string()),
                "seed" => seed = Some(u64::from_str_radix(value, 16).map_err(|_| bad())?),
                "tasks" => tasks = Some(value.parse::<usize>().map_err(|_| bad())?),
                "shard" => {
                    let (i, n) = value.split_once('/').ok_or_else(bad)?;
                    let i = i.parse::<u32>().map_err(|_| bad())?;
                    let n = n.parse::<u32>().map_err(|_| bad())?;
                    if n == 0 || i >= n {
                        return Err(bad());
                    }
                    shard = Some((i, n));
                }
                _ => return Err(bad()),
            }
        }
        let (shard_index, shard_count) = shard.ok_or_else(bad)?;
        Ok(JournalHeader {
            campaign: campaign.ok_or_else(bad)?,
            seed: seed.ok_or_else(bad)?,
            tasks: tasks.ok_or_else(bad)?,
            shard_index,
            shard_count,
        })
    }
}

/// FNV-1a over a byte string — the line hash feeding the digest chain.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — diffuses the chain state between records.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Chain value after appending a record with body `body` to a chain
/// currently at `prev`.
pub(crate) fn chain_step(prev: u64, body: &str) -> u64 {
    mix64(prev ^ fnv1a64(body.as_bytes()))
}

/// Renders a record body (everything before the chain field).
pub(crate) fn record_body(slot: usize, payload: &[f64]) -> String {
    let hex: Vec<String> = payload.iter().map(|v| format!("{:016x}", v.to_bits())).collect();
    format!("r {:x} {}", slot, hex.join(","))
}

/// Parses a record line into `(slot, payload, chain)`.
pub(crate) fn parse_record(line: &str) -> Option<(usize, Vec<f64>, u64)> {
    let rest = line.strip_prefix("r ")?;
    let mut fields = rest.split(' ');
    let slot = usize::from_str_radix(fields.next()?, 16).ok()?;
    let payload_hex = fields.next()?;
    let chain = u64::from_str_radix(fields.next()?, 16).ok()?;
    if fields.next().is_some() {
        return None;
    }
    let mut payload = Vec::new();
    if !payload_hex.is_empty() {
        for part in payload_hex.split(',') {
            payload.push(f64::from_bits(u64::from_str_radix(part, 16).ok()?));
        }
    }
    Some((slot, payload, chain))
}

/// One shard's persisted progress: the parsed header, every verified
/// record, and enough bookkeeping to append safely.
#[derive(Debug)]
pub struct Journal {
    /// The verified header.
    pub header: JournalHeader,
    /// `(slot, payload)` in append order (not slot order).
    pub records: Vec<(usize, Vec<f64>)>,
    /// Whether `load` dropped a torn final line (recovered, not fatal).
    pub torn_tail: bool,
    path: PathBuf,
    chain: u64,
    /// Byte length of the verified prefix; anything past it is torn.
    valid_len: u64,
}

impl Journal {
    /// Creates a fresh journal at `path`, writing the header line.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::Io`] when the file cannot be written.
    pub fn create(path: &Path, header: JournalHeader) -> Result<Journal, JournalError> {
        let line = header.render();
        let mut text = line.clone();
        text.push('\n');
        fs::write(path, &text)?;
        Ok(Journal {
            chain: fnv1a64(line.as_bytes()),
            valid_len: text.len() as u64,
            header,
            records: Vec::new(),
            torn_tail: false,
            path: path.to_path_buf(),
        })
    }

    /// Loads and fully verifies a journal: header, every record's
    /// syntax, slot ranges, duplicates and the digest chain. A torn
    /// final line (crash mid-append) is dropped and flagged; every
    /// other irregularity is a hard error.
    ///
    /// # Errors
    ///
    /// See [`JournalError`] — anything except a torn tail fails.
    pub fn load(path: &Path) -> Result<Journal, JournalError> {
        let raw = fs::read_to_string(path)?;
        // Split into complete (newline-terminated) lines plus a
        // possibly-torn tail fragment.
        let mut complete: Vec<&str> = Vec::new();
        let mut rest = raw.as_str();
        while let Some(pos) = rest.find('\n') {
            complete.push(&rest[..pos]);
            rest = &rest[pos + 1..];
        }
        let mut torn_tail = !rest.is_empty();

        let header_line = complete.first().ok_or_else(|| {
            // Even the header line is incomplete: unrecoverable.
            JournalError::BadHeader {
                line: rest.to_string(),
            }
        })?;
        let header = JournalHeader::parse(header_line)?;
        let mut chain = fnv1a64(header_line.as_bytes());
        let mut valid_len = header_line.len() as u64 + 1;

        let mut records: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut seen = vec![false; header.tasks];
        for (i, line) in complete.iter().enumerate().skip(1) {
            let line_number = i + 1;
            let last = i + 1 == complete.len();
            let parsed = parse_record(line);
            let Some((slot, payload, recorded_chain)) = parsed else {
                if last && !torn_tail {
                    // A malformed final line with nothing after it is a
                    // torn write too (e.g. the newline made it out but
                    // the body didn't finish): drop it.
                    torn_tail = true;
                    break;
                }
                return Err(JournalError::BadRecord { line_number });
            };
            let expected_chain = chain_step(chain, &record_body(slot, &payload));
            if recorded_chain != expected_chain {
                return Err(JournalError::ChainMismatch { line_number });
            }
            if slot >= header.tasks || !header.owns_slot(slot) {
                return Err(JournalError::ForeignSlot { slot });
            }
            if seen[slot] {
                return Err(JournalError::DuplicateSlot { slot });
            }
            seen[slot] = true;
            chain = expected_chain;
            valid_len += line.len() as u64 + 1;
            records.push((slot, payload));
        }

        Ok(Journal {
            header,
            records,
            torn_tail,
            path: path.to_path_buf(),
            chain,
            valid_len,
        })
    }

    /// Loads `path` if it exists (verifying its header matches
    /// `expected`), otherwise creates it fresh.
    ///
    /// # Errors
    ///
    /// Any [`JournalError`] from [`Journal::load`] / [`Journal::create`],
    /// plus [`JournalError::HeaderMismatch`] when an existing file
    /// belongs to a different campaign, seed, task count or shard.
    pub fn open_or_create(path: &Path, expected: JournalHeader) -> Result<Journal, JournalError> {
        if !path.exists() {
            return Journal::create(path, expected);
        }
        let journal = Journal::load(path)?;
        journal.check_header(&expected)?;
        Ok(journal)
    }

    /// Verifies this journal's header equals `expected` field by field.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::HeaderMismatch`] naming the first
    /// disagreeing field.
    pub fn check_header(&self, expected: &JournalHeader) -> Result<(), JournalError> {
        let h = &self.header;
        let mismatch = |field: &'static str, found: String, want: String| {
            Err(JournalError::HeaderMismatch {
                field,
                found,
                expected: want,
            })
        };
        if h.campaign != expected.campaign {
            return mismatch("campaign", h.campaign.clone(), expected.campaign.clone());
        }
        if h.seed != expected.seed {
            return mismatch("seed", format!("{:016x}", h.seed), format!("{:016x}", expected.seed));
        }
        if h.tasks != expected.tasks {
            return mismatch("tasks", h.tasks.to_string(), expected.tasks.to_string());
        }
        if (h.shard_index, h.shard_count) != (expected.shard_index, expected.shard_count) {
            return mismatch(
                "shard",
                format!("{}/{}", h.shard_index, h.shard_count),
                format!("{}/{}", expected.shard_index, expected.shard_count),
            );
        }
        Ok(())
    }

    /// The slots this journal has completed, as a sorted list.
    pub fn completed_slots(&self) -> Vec<usize> {
        let mut slots: Vec<usize> = self.records.iter().map(|(s, _)| *s).collect();
        slots.sort_unstable();
        slots
    }

    /// Appends one completed slot. The first append after loading a
    /// torn file truncates the torn bytes away so the file returns to a
    /// verified prefix plus this record.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::DuplicateSlot`] / [`JournalError::ForeignSlot`]
    /// on contract violations and [`JournalError::Io`] on write failure.
    pub fn append(&mut self, slot: usize, payload: &[f64]) -> Result<(), JournalError> {
        if slot >= self.header.tasks || !self.header.owns_slot(slot) {
            return Err(JournalError::ForeignSlot { slot });
        }
        if self.records.iter().any(|(s, _)| *s == slot) {
            return Err(JournalError::DuplicateSlot { slot });
        }
        let body = record_body(slot, payload);
        let next_chain = chain_step(self.chain, &body);
        let line = format!("{body} {next_chain:016x}\n");

        let mut file = fs::OpenOptions::new().write(true).open(&self.path)?;
        if self.torn_tail {
            file.set_len(self.valid_len)?;
            self.torn_tail = false;
        }
        file.seek(std::io::SeekFrom::Start(self.valid_len))?;
        file.write_all(line.as_bytes())?;
        file.flush()?;

        self.chain = next_chain;
        self.valid_len += line.len() as u64;
        self.records.push((slot, payload.to_vec()));
        Ok(())
    }

    /// Path this journal persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The chain value after the first `count` records (in append
    /// order); `count == 0` yields the header-seeded chain start.
    /// Recomputed from verified records, so any `count` up to
    /// `records.len()` is valid — the transport uses this to verify a
    /// segment's splice point.
    ///
    /// # Panics
    ///
    /// Panics when `count > records.len()` — callers bound it first.
    pub fn chain_at(&self, count: usize) -> u64 {
        assert!(count <= self.records.len(), "chain_at past journal end");
        let mut chain = fnv1a64(self.header.render().as_bytes());
        for (slot, payload) in &self.records[..count] {
            chain = chain_step(chain, &record_body(*slot, payload));
        }
        chain
    }

    /// The chain value over the whole verified file (header + every
    /// record) — the value the next append will mix against.
    pub fn chain(&self) -> u64 {
        self.chain
    }
}

/// Merges one complete shard family into a single canonical journal at
/// `out`: verifies the inputs agree on campaign/seed/tasks and form
/// exactly the partition `0/N .. (N-1)/N`, that together they complete
/// every slot, then writes a fresh `shard=0/1` journal with records in
/// ascending slot order (re-chained over the merged header).
///
/// Returns the merged journal.
///
/// # Errors
///
/// [`JournalError::BadShardFamily`] on inconsistent inputs,
/// [`JournalError::IncompleteMerge`] when slots are missing, plus any
/// load/write error.
pub fn merge(out: &Path, inputs: &[PathBuf]) -> Result<Journal, JournalError> {
    merge_allowing(out, inputs, &[])
}

/// [`merge`] with a quarantine list: slots named in `allow_missing`
/// may be absent from every input (the supervisor fenced them off
/// after repeated worker crashes) and are simply left out of the
/// merged journal. Any *other* missing slot is still
/// [`JournalError::IncompleteMerge`], and a quarantined slot that does
/// have a record is merged normally — quarantine permits absence, it
/// does not erase data.
///
/// # Errors
///
/// As [`merge`].
pub fn merge_allowing(
    out: &Path,
    inputs: &[PathBuf],
    allow_missing: &[usize],
) -> Result<Journal, JournalError> {
    if inputs.is_empty() {
        return Err(JournalError::BadShardFamily {
            detail: "no input journals".to_string(),
        });
    }
    let shards: Vec<Journal> = inputs
        .iter()
        .map(|p| Journal::load(p))
        .collect::<Result<_, _>>()?;

    let first = &shards[0].header;
    let n = first.shard_count;
    if shards.len() != n as usize {
        return Err(JournalError::BadShardFamily {
            detail: format!("{} inputs for a {n}-way partition", shards.len()),
        });
    }
    let mut seen_shard = vec![false; n as usize];
    for j in &shards {
        let h = &j.header;
        if (h.campaign.as_str(), h.seed, h.tasks, h.shard_count)
            != (first.campaign.as_str(), first.seed, first.tasks, n)
        {
            return Err(JournalError::BadShardFamily {
                detail: format!(
                    "'{}' ({}, seed {:016x}, {} tasks, /{}) does not match '{}'",
                    j.path.display(),
                    h.campaign,
                    h.seed,
                    h.tasks,
                    h.shard_count,
                    first.campaign
                ),
            });
        }
        let idx = h.shard_index as usize;
        if seen_shard[idx] {
            return Err(JournalError::BadShardFamily {
                detail: format!("shard {idx}/{n} appears twice"),
            });
        }
        seen_shard[idx] = true;
    }

    let mut slots: Vec<Option<Vec<f64>>> = vec![None; first.tasks];
    for j in &shards {
        for (slot, payload) in &j.records {
            // Per-journal loads already rejected foreign/duplicate slots.
            slots[*slot] = Some(payload.clone());
        }
    }
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .filter(|i| !allow_missing.contains(i))
        .collect();
    if !missing.is_empty() {
        return Err(JournalError::IncompleteMerge { missing });
    }

    let merged_header = JournalHeader {
        campaign: first.campaign.clone(),
        seed: first.seed,
        tasks: first.tasks,
        shard_index: 0,
        shard_count: 1,
    };
    let mut merged = Journal::create(out, merged_header)?;
    for (slot, payload) in slots.into_iter().enumerate() {
        if let Some(payload) = payload {
            merged.append(slot, &payload)?;
        }
    }
    Ok(merged)
}
