//! The persistent campaign driver: journal replay → checkpoint resume →
//! shard-aware slot execution.
//!
//! The lifecycle of one `mb-lab run`:
//!
//! 1. Open (or create) the shard's journal and verify its header
//!    against the campaign registry — version skew, a different seed or
//!    a foreign campaign are hard errors.
//! 2. Feed every journaled slot into
//!    [`mb_simcore::par::Checkpoint::from_slots`]; slots with no record
//!    become "not yet run" failures.
//! 3. [`Checkpoint::resume_slots`] reruns only the missing slots this
//!    shard owns (`slot % N == i`), on the deterministic sweep pool,
//!    appending each result to the journal the moment it completes —
//!    so a `SIGKILL` at any instant loses at most the in-flight slots.
//!    [`RunOptions::max_slots`] bounds how many of those slots one
//!    invocation attempts (in ascending slot order), so CI can smoke a
//!    truncated paper shard deterministically; wall time per executed
//!    slot is reported back in [`RunOutcome::slot_secs`].
//! 4. When every slot of the campaign is present, a single-shard run
//!    (or a merged journal) finalizes the stream and reports its
//!    digest. A bounded run that leaves slots behind simply stops; the
//!    next unbounded invocation completes it.

use crate::campaign::{digest, Campaign};
use crate::journal::{Journal, JournalError, JournalHeader};
use mb_simcore::error::MbError;
use parking_lot::Mutex;
use std::path::Path;

/// A shard assignment `index/count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This process's shard index (`0 <= index < count`).
    pub index: u32,
    /// Total shard count.
    pub count: u32,
}

impl Shard {
    /// The single-process assignment `0/1`.
    pub fn solo() -> Self {
        Shard { index: 0, count: 1 }
    }

    /// Parses `"i/N"`.
    pub fn parse(text: &str) -> Option<Shard> {
        let (i, n) = text.split_once('/')?;
        let index = i.trim().parse().ok()?;
        let count = n.trim().parse().ok()?;
        (count > 0 && index < count).then_some(Shard { index, count })
    }

    /// Whether this shard owns `slot` under the modulo partition.
    pub fn owns(&self, slot: usize) -> bool {
        slot % self.count as usize == self.index as usize
    }
}

/// Knobs for one driver invocation beyond the campaign itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// This process's shard assignment.
    pub shard: Shard,
    /// Fixed `thread::sleep` injected before every slot measurement —
    /// the kill/resume integration test uses it to widen the window in
    /// which a signal lands mid-sweep. Zero in normal operation.
    pub task_delay_ms: u64,
    /// Upper bound on slots *executed* by this invocation (replayed
    /// slots are free). The lowest-indexed missing owned slots run
    /// first, so repeated bounded invocations walk the shard
    /// deterministically front to back.
    pub max_slots: Option<usize>,
    /// Quarantined slots this invocation must not execute (they may
    /// still replay if an earlier attempt journaled them). The
    /// supervisor passes the fenced poison slots here so a restarted
    /// worker resumes *past* the slot that kept killing it.
    pub skip_slots: Vec<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            shard: Shard::solo(),
            task_delay_ms: 0,
            max_slots: None,
            // An empty `Vec::new` never allocates, and options are
            // built once per run, not per slot.
            skip_slots: Vec::new(), // mb-check: allow(hot-alloc)
        }
    }
}

/// Outcome of one `run_campaign` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Slots replayed from the journal (owned by this shard).
    pub replayed: usize,
    /// Slots executed in this process.
    pub executed: usize,
    /// Owned slots still missing after this invocation (nonzero only
    /// for bounded runs).
    pub remaining: usize,
    /// Owned missing slots withheld because [`RunOptions::skip_slots`]
    /// quarantined them.
    pub skipped: usize,
    /// Wall time of every slot executed in this process, as
    /// `(slot, seconds)` in ascending slot order.
    pub slot_secs: Vec<(usize, f64)>,
    /// Whether a torn journal tail was dropped during replay.
    pub recovered_torn_tail: bool,
    /// Digest of the finalized stream — only for a complete (solo or
    /// merged) journal; sharded and bounded runs stop short of it.
    pub digest: Option<u64>,
}

/// The expected journal header of `campaign` under `shard`.
pub fn expected_header(campaign: &dyn Campaign, shard: Shard) -> JournalHeader {
    JournalHeader {
        campaign: campaign.name().to_string(),
        seed: campaign.seed(),
        tasks: campaign.task_labels().len(),
        shard_index: shard.index,
        shard_count: shard.count,
    }
}

/// Runs (or resumes) one shard of a campaign against its journal with
/// the default options (see [`run_campaign_with`]).
///
/// # Errors
///
/// As [`run_campaign_with`].
pub fn run_campaign(
    campaign: &dyn Campaign,
    journal_path: &Path,
    shard: Shard,
    task_delay_ms: u64,
) -> Result<RunOutcome, JournalError> {
    run_campaign_with(
        campaign,
        journal_path,
        &RunOptions {
            shard,
            task_delay_ms,
            ..RunOptions::default()
        },
    )
}

/// Runs (or resumes) one shard of a campaign against its journal.
///
/// A shard that owns zero slots (possible whenever `shard.count`
/// exceeds the campaign's task count) is a valid no-op: the journal is
/// created header-only and the run reports zero replayed/executed
/// slots. `merge` and `digest --check` accept such journals.
///
/// # Errors
///
/// Any [`JournalError`] from opening, verifying or appending to the
/// journal; [`JournalError::BadPayload`] when a journaled record's
/// width disagrees with the campaign's fixed slot width; plus
/// [`JournalError::SlotFailed`] if a slot execution dies (surfaced
/// with the failing slot's index and label, and mapped to the
/// restartable exit code 4 by the CLI).
pub fn run_campaign_with(
    campaign: &dyn Campaign,
    journal_path: &Path,
    opts: &RunOptions,
) -> Result<RunOutcome, JournalError> {
    let shard = opts.shard;
    let labels = campaign.task_labels();
    let n = labels.len();
    // Exclusive ownership for the whole run: a second concurrent
    // writer would interleave appends and break the digest chain.
    // Held until this function returns (success or error).
    let _lock = crate::lock::PathLock::acquire_guarding(journal_path)
        .map_err(JournalError::Locked)?;
    let journal = Journal::open_or_create(journal_path, expected_header(campaign, shard))?;
    let recovered_torn_tail = journal.torn_tail;
    let replayed = journal.records.len();
    check_payload_widths(campaign, &journal.records)?;

    // Journal records → positional slots; absent ⇒ "not yet run".
    let mut slots: Vec<Result<Vec<f64>, MbError>> = (0..n)
        .map(|i| {
            Err(MbError::TaskFailed {
                label: labels[i].clone(),
                message: "not yet run".to_string(),
            })
        })
        .collect();
    for (slot, payload) in &journal.records {
        slots[*slot] = Ok(payload.clone());
    }

    let mut checkpoint = mb_simcore::par::Checkpoint::from_slots(campaign.seed(), slots);
    let mut owned_missing: Vec<usize> = checkpoint
        .missing()
        .into_iter()
        .filter(|&i| shard.owns(i))
        .collect();
    owned_missing.sort_unstable();
    let before_skip = owned_missing.len();
    owned_missing.retain(|i| !opts.skip_slots.contains(i));
    let skipped = before_skip - owned_missing.len();
    let remaining = match opts.max_slots {
        Some(bound) if bound < owned_missing.len() => {
            let rest = owned_missing.len() - bound;
            owned_missing.truncate(bound);
            rest
        }
        _ => 0,
    };
    let executed = owned_missing.len();
    let mut attempted = vec![false; n];
    for &i in &owned_missing {
        attempted[i] = true;
    }

    // The journal is shared across sweep workers; appends serialize on
    // the mutex, so record order is append order (not slot order) —
    // the chain only certifies integrity, the slot index carries
    // position. Slot wall times ride along under the same lock.
    let journal = Mutex::new((journal, Vec::<(usize, f64)>::new()));
    let tasks: Vec<(String, usize)> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l.clone(), i))
        .collect();
    checkpoint.resume_slots(tasks, &owned_missing, |ctx, _slot| {
        if opts.task_delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(opts.task_delay_ms));
        }
        // Wall time is reporting-only: it never feeds a measurement or
        // a digest, so the determinism contract is untouched.
        let started = std::time::Instant::now(); // mb-check: allow(wall-clock-in-model)
        let payload = campaign.run_slot(ctx);
        let secs = started.elapsed().as_secs_f64(); // mb-check: allow(wall-clock-in-model)
        let mut shared = journal.lock();
        shared
            .0
            .append(ctx.index, &payload)
            .expect("journal append of a freshly measured, owned slot");
        shared.1.push((ctx.index, secs));
        payload
    });
    let (_, mut slot_secs) = journal.into_inner();
    slot_secs.sort_unstable_by_key(|&(slot, _)| slot);

    // A panicking slot surfaces as a TaskFailed entry; report the first
    // among the slots this invocation actually attempted (slots beyond
    // the bound or owned by other shards are legitimately "not yet run").
    if let Some((slot, err)) = checkpoint
        .failures()
        .into_iter()
        .find(|(i, _)| attempted[*i])
    {
        return Err(JournalError::SlotFailed {
            slot,
            detail: err.to_string(),
        });
    }

    let final_digest = if shard.count == 1 && checkpoint.is_complete() {
        let payloads: Vec<Vec<f64>> = checkpoint
            .into_slots()
            .into_iter()
            .collect::<Result<_, _>>()
            .map_err(|e| JournalError::BadShardFamily {
                detail: format!("incomplete solo run: {e}"),
            })?;
        Some(digest(campaign.finalize(&payloads)))
    } else {
        None
    };

    Ok(RunOutcome {
        replayed,
        executed,
        remaining,
        skipped,
        slot_secs,
        recovered_torn_tail,
        digest: final_digest,
    })
}

/// Rejects journaled payloads whose width disagrees with the
/// campaign's fixed slot width, so a truncated record surfaces as a
/// [`JournalError::BadPayload`] instead of a slice panic inside the
/// campaign's finalizer.
fn check_payload_widths(
    campaign: &dyn Campaign,
    records: &[(usize, Vec<f64>)],
) -> Result<(), JournalError> {
    if let Some(expected) = campaign.payload_width() {
        for (slot, payload) in records {
            if payload.len() != expected {
                return Err(JournalError::BadPayload {
                    slot: *slot,
                    got: payload.len(),
                    expected,
                });
            }
        }
    }
    Ok(())
}

/// Finalizes a *complete* journal (solo or merged) through its
/// campaign's finalizer and returns the stream digest.
///
/// # Errors
///
/// [`JournalError::IncompleteMerge`] when slots are missing,
/// [`JournalError::BadPayload`] when a record's width disagrees with
/// the campaign's fixed slot width,
/// [`JournalError::BadShardFamily`] when the journal's campaign is not
/// registered or its header disagrees with the registry.
pub fn digest_journal(journal: &Journal) -> Result<u64, JournalError> {
    let campaign =
        crate::campaign::find(&journal.header.campaign).ok_or_else(|| JournalError::BadShardFamily {
            detail: format!("unknown campaign '{}'", journal.header.campaign),
        })?;
    let expected = expected_header(campaign.as_ref(), Shard::solo());
    if journal.header.seed != expected.seed || journal.header.tasks != expected.tasks {
        return Err(JournalError::BadShardFamily {
            detail: format!(
                "journal header (seed {:016x}, {} tasks) disagrees with registered \
                 campaign '{}' (seed {:016x}, {} tasks)",
                journal.header.seed,
                journal.header.tasks,
                campaign.name(),
                expected.seed,
                expected.tasks
            ),
        });
    }
    check_payload_widths(campaign.as_ref(), &journal.records)?;
    let mut slots: Vec<Option<Vec<f64>>> = vec![None; journal.header.tasks];
    for (slot, payload) in &journal.records {
        slots[*slot] = Some(payload.clone());
    }
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    if !missing.is_empty() {
        return Err(JournalError::IncompleteMerge { missing });
    }
    let payloads: Vec<Vec<f64>> = slots
        .into_iter()
        .map(|s| s.expect("missing slots rejected above"))
        .collect();
    Ok(digest(campaign.finalize(&payloads)))
}
