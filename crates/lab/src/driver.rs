//! The persistent campaign driver: journal replay → checkpoint resume →
//! shard-aware slot execution.
//!
//! The lifecycle of one `mb-lab run`:
//!
//! 1. Open (or create) the shard's journal and verify its header
//!    against the campaign registry — version skew, a different seed or
//!    a foreign campaign are hard errors.
//! 2. Feed every journaled slot into
//!    [`mb_simcore::par::Checkpoint::from_slots`]; slots with no record
//!    become "not yet run" failures.
//! 3. [`Checkpoint::resume_slots`] reruns only the missing slots this
//!    shard owns (`slot % N == i`), on the deterministic sweep pool,
//!    appending each result to the journal the moment it completes —
//!    so a `SIGKILL` at any instant loses at most the in-flight slots.
//! 4. When the shard's slots are all present, a single-shard run (or a
//!    merged journal) finalizes the stream and reports its digest.

use crate::campaign::{digest, Campaign};
use crate::journal::{Journal, JournalError, JournalHeader};
use mb_simcore::error::MbError;
use parking_lot::Mutex;
use std::path::Path;

/// A shard assignment `index/count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This process's shard index (`0 <= index < count`).
    pub index: u32,
    /// Total shard count.
    pub count: u32,
}

impl Shard {
    /// The single-process assignment `0/1`.
    pub fn solo() -> Self {
        Shard { index: 0, count: 1 }
    }

    /// Parses `"i/N"`.
    pub fn parse(text: &str) -> Option<Shard> {
        let (i, n) = text.split_once('/')?;
        let index = i.trim().parse().ok()?;
        let count = n.trim().parse().ok()?;
        (count > 0 && index < count).then_some(Shard { index, count })
    }

    /// Whether this shard owns `slot` under the modulo partition.
    pub fn owns(&self, slot: usize) -> bool {
        slot % self.count as usize == self.index as usize
    }
}

/// Outcome of one `run_campaign` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Slots replayed from the journal (owned by this shard).
    pub replayed: usize,
    /// Slots executed in this process.
    pub executed: usize,
    /// Whether a torn journal tail was dropped during replay.
    pub recovered_torn_tail: bool,
    /// Digest of the finalized stream — only for a complete (solo or
    /// merged) journal; sharded runs finish their partition and stop.
    pub digest: Option<u64>,
}

/// The expected journal header of `campaign` under `shard`.
pub fn expected_header(campaign: &dyn Campaign, shard: Shard) -> JournalHeader {
    JournalHeader {
        campaign: campaign.name().to_string(),
        seed: campaign.seed(),
        tasks: campaign.task_labels().len(),
        shard_index: shard.index,
        shard_count: shard.count,
    }
}

/// Runs (or resumes) one shard of a campaign against its journal.
///
/// `task_delay_ms` injects a fixed `thread::sleep` before every slot
/// measurement — the kill/resume integration test uses it to widen the
/// window in which a signal lands mid-sweep. Zero in normal operation.
///
/// # Errors
///
/// Any [`JournalError`] from opening, verifying or appending to the
/// journal, plus [`JournalError::BadShardFamily`] if a slot execution
/// dies (surfaced with the failing slot's label).
pub fn run_campaign(
    campaign: &dyn Campaign,
    journal_path: &Path,
    shard: Shard,
    task_delay_ms: u64,
) -> Result<RunOutcome, JournalError> {
    let labels = campaign.task_labels();
    let n = labels.len();
    let journal = Journal::open_or_create(journal_path, expected_header(campaign, shard))?;
    let recovered_torn_tail = journal.torn_tail;
    let replayed = journal.records.len();

    // Journal records → positional slots; absent ⇒ "not yet run".
    let mut slots: Vec<Result<Vec<f64>, MbError>> = (0..n)
        .map(|i| {
            Err(MbError::TaskFailed {
                label: labels[i].clone(),
                message: "not yet run".to_string(),
            })
        })
        .collect();
    for (slot, payload) in &journal.records {
        slots[*slot] = Ok(payload.clone());
    }

    let mut checkpoint = mb_simcore::par::Checkpoint::from_slots(campaign.seed(), slots);
    let owned_missing: Vec<usize> = checkpoint
        .missing()
        .into_iter()
        .filter(|&i| shard.owns(i))
        .collect();
    let executed = owned_missing.len();

    // The journal is shared across sweep workers; appends serialize on
    // the mutex, so record order is append order (not slot order) —
    // the chain only certifies integrity, the slot index carries
    // position.
    let journal = Mutex::new(journal);
    let tasks: Vec<(String, usize)> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l.clone(), i))
        .collect();
    checkpoint.resume_slots(tasks, &owned_missing, |ctx, _slot| {
        if task_delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(task_delay_ms));
        }
        let payload = campaign.run_slot(ctx);
        journal
            .lock()
            .append(ctx.index, &payload)
            .expect("journal append of a freshly measured, owned slot");
        payload
    });

    // A panicking slot surfaces as a TaskFailed entry; report the first.
    if let Some((slot, err)) = checkpoint
        .failures()
        .into_iter()
        .find(|(i, _)| shard.owns(*i))
    {
        return Err(JournalError::BadShardFamily {
            detail: format!("slot {slot} failed: {err}"),
        });
    }

    let final_digest = if shard.count == 1 {
        let payloads: Vec<Vec<f64>> = checkpoint
            .into_slots()
            .into_iter()
            .collect::<Result<_, _>>()
            .map_err(|e| JournalError::BadShardFamily {
                detail: format!("incomplete solo run: {e}"),
            })?;
        Some(digest(campaign.finalize(&payloads)))
    } else {
        None
    };

    Ok(RunOutcome {
        replayed,
        executed,
        recovered_torn_tail,
        digest: final_digest,
    })
}

/// Finalizes a *complete* journal (solo or merged) through its
/// campaign's finalizer and returns the stream digest.
///
/// # Errors
///
/// [`JournalError::IncompleteMerge`] when slots are missing,
/// [`JournalError::BadShardFamily`] when the journal's campaign is not
/// registered or its header disagrees with the registry.
pub fn digest_journal(journal: &Journal) -> Result<u64, JournalError> {
    let campaign =
        crate::campaign::find(&journal.header.campaign).ok_or_else(|| JournalError::BadShardFamily {
            detail: format!("unknown campaign '{}'", journal.header.campaign),
        })?;
    let expected = expected_header(campaign.as_ref(), Shard::solo());
    if journal.header.seed != expected.seed || journal.header.tasks != expected.tasks {
        return Err(JournalError::BadShardFamily {
            detail: format!(
                "journal header (seed {:016x}, {} tasks) disagrees with registered \
                 campaign '{}' (seed {:016x}, {} tasks)",
                journal.header.seed,
                journal.header.tasks,
                campaign.name(),
                expected.seed,
                expected.tasks
            ),
        });
    }
    let mut slots: Vec<Option<Vec<f64>>> = vec![None; journal.header.tasks];
    for (slot, payload) in &journal.records {
        slots[*slot] = Some(payload.clone());
    }
    let missing: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    if !missing.is_empty() {
        return Err(JournalError::IncompleteMerge { missing });
    }
    let payloads: Vec<Vec<f64>> = slots
        .into_iter()
        .map(|s| s.expect("missing slots rejected above"))
        .collect();
    Ok(digest(campaign.finalize(&payloads)))
}
