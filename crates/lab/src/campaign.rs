//! The campaign registry: every sweep `mb-lab` can drive.
//!
//! A [`Campaign`] is a sweep decomposed into *slots* — independent
//! measurements, each a pure function of `(campaign config, slot
//! index, slot seed)` — plus a finalizer that reassembles the per-slot
//! payloads into the canonical value stream the figure's pinned digest
//! folds. The decomposition leans on the slot APIs the figure runners
//! expose (`fig3::measure_scaling_slot`, `fig5::measure_slot`, …),
//! which are proven bit-identical to the monolithic runs by tests in
//! `montblanc` itself; the registry's job is only to route slots and
//! streams, never to do arithmetic of its own.
//!
//! Every figure campaign comes in two grids: the `-quick` test
//! configuration and the `-paper` grid behind the paper's headline
//! artifacts (Fig 3 strong scaling, Fig 5's 2 100-measurement RT
//! sweep, Fig 7, Table II). The paper campaigns are the long-running
//! sharded workload the driver was built for; `EXPERIMENTS.md` has the
//! runbook.
//!
//! The pinned digests repeated here mirror the constants in
//! `crates/core/tests/common/digest.rs`; `campaign_digests.rs` asserts
//! the two sets stay equal.

use mb_faults::FaultConfig;
use mb_simcore::par::TaskCtx;
use montblanc::{fig3, fig5, fig7, table2, top500};
use std::sync::OnceLock;

/// Pinned digest of the `fig3-quick` campaign (mirrors
/// `FIG3_QUICK_DIGEST` in the core test fixtures).
pub const FIG3_QUICK_DIGEST: u64 = 0xd0d5_f716_d0b3_0356;
/// Pinned digest of the `fig3-faulted-quick` campaign.
pub const FIG3_FAULTED_QUICK_DIGEST: u64 = 0x8ce8_a81a_59cb_2163;
/// Pinned digest of the `fig5-quick` campaign.
pub const FIG5_QUICK_DIGEST: u64 = 0x206e_118a_c499_7a4c;
/// Pinned digest of the `fig7-quick` campaign.
pub const FIG7_QUICK_DIGEST: u64 = 0xa5a1_d292_2006_e451;
/// Pinned digest of the `table2-quick` campaign.
pub const TABLE2_QUICK_DIGEST: u64 = 0xe2a5_d2bf_61fb_fbcf;
/// Pinned digest of the `fig3-paper` campaign (mirrors
/// `FIG3_PAPER_DIGEST` in the core test fixtures).
pub const FIG3_PAPER_DIGEST: u64 = 0x622e_3c14_cb8e_59b9;
/// Pinned digest of the `fig3-faulted-paper` campaign.
pub const FIG3_FAULTED_PAPER_DIGEST: u64 = 0x7c65_dc30_f714_ac45;
/// Pinned digest of the `fig5-paper` campaign.
pub const FIG5_PAPER_DIGEST: u64 = 0xc49f_00d6_ca0a_c4ad;
/// Pinned digest of the `fig7-paper` campaign.
pub const FIG7_PAPER_DIGEST: u64 = 0x9080_737c_78a9_66c3;
/// Pinned digest of the `table2-paper` campaign.
pub const TABLE2_PAPER_DIGEST: u64 = 0x8bd9_f1e8_0879_d505;
/// Pinned digest of the `top500-trends` campaign (pinned here first —
/// the trend fits had no digest guard before `mb-lab`).
pub const TOP500_TRENDS_DIGEST: u64 = 0xe0c5_c859_2a9b_23ef;

/// Folds a value stream into the workspace's order-sensitive 64-bit
/// digest — the same fold the core test fixtures pin.
pub fn digest(values: impl IntoIterator<Item = f64>) -> u64 {
    values
        .into_iter()
        .fold(0u64, |h, v| h.rotate_left(7) ^ v.to_bits())
}

/// Which configuration grid a figure campaign drives: the fast test
/// grid or the full grid behind the paper's plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// The `Config::quick()` test grid.
    Quick,
    /// The `Config::paper()` full grid.
    Paper,
}

/// Seed salt distinguishing a paper campaign's journal family from its
/// quick sibling — a paper shard can never resume into a quick journal.
const PAPER_SEED_SALT: u64 = 0x9A9E12;

impl Grid {
    fn seed(self, base: u64) -> u64 {
        match self {
            Grid::Quick => base,
            Grid::Paper => base ^ PAPER_SEED_SALT,
        }
    }
}

/// A sweep the driver can run slot by slot, persist, shard and resume.
pub trait Campaign: Sync {
    /// Registry name (the CLI's campaign argument).
    fn name(&self) -> &'static str;

    /// One-line description for `mb-lab list`.
    fn description(&self) -> &'static str;

    /// Experiment seed; slot seeds derive from it via
    /// [`mb_simcore::par::slot_bindings`].
    fn seed(&self) -> u64;

    /// Labels of every slot, in canonical slot order. The length is the
    /// campaign's task count.
    fn task_labels(&self) -> Vec<String>;

    /// Measures one slot. Must be a pure function of the campaign
    /// config and `ctx` so any shard or resumed process reproduces it
    /// bit for bit.
    fn run_slot(&self, ctx: TaskCtx) -> Vec<f64>;

    /// Reassembles completed slot payloads (in slot order) into the
    /// canonical value stream whose digest identifies the campaign.
    fn finalize(&self, slots: &[Vec<f64>]) -> Vec<f64>;

    /// The pinned digest of [`Campaign::finalize`]'s stream, when this
    /// campaign has one.
    fn pinned_digest(&self) -> Option<u64>;

    /// Width every slot payload must have, when the campaign's payloads
    /// are fixed-width. The driver rejects journal records of any other
    /// width before they can reach [`Campaign::finalize`] — a short
    /// payload must surface as a journal error, never a slice panic.
    fn payload_width(&self) -> Option<usize> {
        None
    }
}

/// Figure 3 strong scaling: one slot per `(panel, core count)` point.
struct Fig3Scaling {
    grid: Grid,
}

impl Fig3Scaling {
    fn config(&self) -> fig3::Fig3Config {
        match self.grid {
            Grid::Quick => fig3::Fig3Config::quick(),
            Grid::Paper => fig3::Fig3Config::paper(),
        }
    }
}

impl Campaign for Fig3Scaling {
    fn name(&self) -> &'static str {
        match self.grid {
            Grid::Quick => "fig3-quick",
            Grid::Paper => "fig3-paper",
        }
    }

    fn description(&self) -> &'static str {
        match self.grid {
            Grid::Quick => {
                "Figure 3 strong scaling (LINPACK/SPECFEM3D/BigDFT on Tibidabo), quick grid"
            }
            Grid::Paper => {
                "Figure 3 strong scaling (LINPACK/SPECFEM3D/BigDFT on Tibidabo), full paper grid"
            }
        }
    }

    fn seed(&self) -> u64 {
        self.grid.seed(0x5CA1E)
    }

    fn task_labels(&self) -> Vec<String> {
        let cfg = self.config();
        fig3::scaling_slots(&cfg)
            .into_iter()
            .map(|(panel, cores)| fig3::slot_label(panel, cores))
            .collect()
    }

    fn run_slot(&self, ctx: TaskCtx) -> Vec<f64> {
        let cfg = self.config();
        let (panel, cores) = fig3::scaling_slots(&cfg)[ctx.index];
        let rate = fig3::tegra2_effective_gflops();
        vec![fig3::measure_scaling_slot(&cfg, panel, cores, rate)]
    }

    fn finalize(&self, slots: &[Vec<f64>]) -> Vec<f64> {
        let cfg = self.config();
        let times: Vec<f64> = slots.iter().map(|p| p[0]).collect();
        fig3::scaling_stream(&cfg, fig3::tegra2_effective_gflops(), &times)
    }

    fn pinned_digest(&self) -> Option<u64> {
        Some(match self.grid {
            Grid::Quick => FIG3_QUICK_DIGEST,
            Grid::Paper => FIG3_PAPER_DIGEST,
        })
    }

    fn payload_width(&self) -> Option<usize> {
        Some(1)
    }
}

/// Figure 3 under `FaultConfig::light`, with resilience counters.
struct Fig3Faulted {
    grid: Grid,
}

impl Fig3Faulted {
    fn config(&self) -> fig3::Fig3Config {
        Fig3Scaling { grid: self.grid }.config()
    }
}

impl Campaign for Fig3Faulted {
    fn name(&self) -> &'static str {
        match self.grid {
            Grid::Quick => "fig3-faulted-quick",
            Grid::Paper => "fig3-faulted-paper",
        }
    }

    fn description(&self) -> &'static str {
        match self.grid {
            Grid::Quick => "Figure 3 scaling under light injected faults, with resilience counters",
            Grid::Paper => {
                "Figure 3 full paper grid under light injected faults, with resilience counters"
            }
        }
    }

    fn seed(&self) -> u64 {
        self.grid.seed(0x5CA1E ^ 0xFA017)
    }

    fn task_labels(&self) -> Vec<String> {
        Fig3Scaling { grid: self.grid }.task_labels()
    }

    fn run_slot(&self, ctx: TaskCtx) -> Vec<f64> {
        let cfg = self.config();
        let (panel, cores) = fig3::scaling_slots(&cfg)[ctx.index];
        let rate = fig3::tegra2_effective_gflops();
        fig3::measure_faulted_slot(&cfg, FaultConfig::light(), panel, cores, rate).to_vec()
    }

    fn finalize(&self, slots: &[Vec<f64>]) -> Vec<f64> {
        let cfg = self.config();
        let payloads: Vec<[f64; 6]> = slots
            .iter()
            .map(|p| {
                let mut a = [0.0; 6];
                a.copy_from_slice(&p[..6]);
                a
            })
            .collect();
        fig3::faulted_stream(&cfg, fig3::tegra2_effective_gflops(), &payloads)
    }

    fn pinned_digest(&self) -> Option<u64> {
        Some(match self.grid {
            Grid::Quick => FIG3_FAULTED_QUICK_DIGEST,
            Grid::Paper => FIG3_FAULTED_PAPER_DIGEST,
        })
    }

    fn payload_width(&self) -> Option<usize> {
        Some(6)
    }
}

/// Figure 5 RT-anomaly bandwidth sweep: one slot per measurement in
/// sequence order. The serial prelude (randomised plan, anomaly window,
/// order-dependent page allocations) is built once per process and
/// shared across slots — the paper grid has 2 100 of them, and a
/// per-slot prelude would make the campaign quadratic in the grid.
struct Fig5Anomaly {
    grid: Grid,
    measurer: OnceLock<fig5::SlotMeasurer>,
}

impl Fig5Anomaly {
    fn new(grid: Grid) -> Self {
        Fig5Anomaly {
            grid,
            measurer: OnceLock::new(),
        }
    }

    fn config(&self) -> fig5::Fig5Config {
        match self.grid {
            Grid::Quick => fig5::Fig5Config::quick(),
            Grid::Paper => fig5::Fig5Config::paper(),
        }
    }

    fn measurer(&self) -> &fig5::SlotMeasurer {
        self.measurer
            .get_or_init(|| fig5::SlotMeasurer::new(&self.config()))
    }
}

impl Campaign for Fig5Anomaly {
    fn name(&self) -> &'static str {
        match self.grid {
            Grid::Quick => "fig5-quick",
            Grid::Paper => "fig5-paper",
        }
    }

    fn description(&self) -> &'static str {
        match self.grid {
            Grid::Quick => "Figure 5 Snowball bandwidth under the RT scheduling anomaly, quick grid",
            Grid::Paper => {
                "Figure 5 Snowball bandwidth under the RT anomaly, paper grid (50 sizes x 42 reps)"
            }
        }
    }

    fn seed(&self) -> u64 {
        self.grid.seed(0xF165)
    }

    fn task_labels(&self) -> Vec<String> {
        fig5::slot_labels(&self.config())
    }

    fn run_slot(&self, ctx: TaskCtx) -> Vec<f64> {
        vec![self.measurer().measure(ctx.index)]
    }

    fn finalize(&self, slots: &[Vec<f64>]) -> Vec<f64> {
        slots.iter().map(|p| p[0]).collect()
    }

    fn pinned_digest(&self) -> Option<u64> {
        Some(match self.grid {
            Grid::Quick => FIG5_QUICK_DIGEST,
            Grid::Paper => FIG5_PAPER_DIGEST,
        })
    }

    fn payload_width(&self) -> Option<usize> {
        Some(1)
    }
}

/// Figure 7 magicfilter auto-tuning: one slot per `(machine, unroll)`
/// variant.
struct Fig7Tuning {
    grid: Grid,
}

impl Fig7Tuning {
    fn config(&self) -> fig7::Fig7Config {
        match self.grid {
            Grid::Quick => fig7::Fig7Config::quick(),
            Grid::Paper => fig7::Fig7Config::paper(),
        }
    }
}

impl Campaign for Fig7Tuning {
    fn name(&self) -> &'static str {
        match self.grid {
            Grid::Quick => "fig7-quick",
            Grid::Paper => "fig7-paper",
        }
    }

    fn description(&self) -> &'static str {
        match self.grid {
            Grid::Quick => "Figure 7 magicfilter unroll sweep on Nehalem and Tegra2, quick grid",
            Grid::Paper => "Figure 7 magicfilter unroll sweep on Nehalem and Tegra2, paper grid",
        }
    }

    fn seed(&self) -> u64 {
        self.grid.seed(0xF167)
    }

    fn task_labels(&self) -> Vec<String> {
        let cfg = self.config();
        (0..fig7::slot_count(&cfg))
            .map(|slot| fig7::slot_label(&cfg, slot))
            .collect()
    }

    fn run_slot(&self, ctx: TaskCtx) -> Vec<f64> {
        let cfg = self.config();
        fig7::measure_slot(&cfg, ctx.index).to_vec()
    }

    fn finalize(&self, slots: &[Vec<f64>]) -> Vec<f64> {
        slots.iter().flat_map(|p| p.iter().copied()).collect()
    }

    fn pinned_digest(&self) -> Option<u64> {
        Some(match self.grid {
            Grid::Quick => FIG7_QUICK_DIGEST,
            Grid::Paper => FIG7_PAPER_DIGEST,
        })
    }

    fn payload_width(&self) -> Option<usize> {
        Some(2)
    }
}

/// Extended Table II: one slot per `(row, machine)` cell.
struct Table2Extended {
    grid: Grid,
}

impl Table2Extended {
    fn config(&self) -> table2::Table2Config {
        match self.grid {
            Grid::Quick => table2::Table2Config::quick(),
            Grid::Paper => table2::Table2Config::paper(),
        }
    }
}

impl Campaign for Table2Extended {
    fn name(&self) -> &'static str {
        match self.grid {
            Grid::Quick => "table2-quick",
            Grid::Paper => "table2-paper",
        }
    }

    fn description(&self) -> &'static str {
        match self.grid {
            Grid::Quick => "Extended Table II single-node comparison (Snowball vs Xeon), quick config",
            Grid::Paper => "Extended Table II single-node comparison (Snowball vs Xeon), paper config",
        }
    }

    fn seed(&self) -> u64 {
        self.grid.seed(0x7AB1E2)
    }

    fn task_labels(&self) -> Vec<String> {
        (0..table2::extended_cell_count())
            .map(table2::cell_label)
            .collect()
    }

    fn run_slot(&self, ctx: TaskCtx) -> Vec<f64> {
        let cfg = self.config();
        vec![table2::measure_cell(&cfg, ctx.index)]
    }

    fn finalize(&self, slots: &[Vec<f64>]) -> Vec<f64> {
        let cells: Vec<f64> = slots.iter().map(|p| p[0]).collect();
        table2::extended_stream(&cells)
    }

    fn pinned_digest(&self) -> Option<u64> {
        Some(match self.grid {
            Grid::Quick => TABLE2_QUICK_DIGEST,
            Grid::Paper => TABLE2_PAPER_DIGEST,
        })
    }

    fn payload_width(&self) -> Option<usize> {
        Some(1)
    }
}

/// Figure 1 TOP500 trend fits: one slot per series.
struct Top500Trends;

impl Campaign for Top500Trends {
    fn name(&self) -> &'static str {
        "top500-trends"
    }

    fn description(&self) -> &'static str {
        "Figure 1 TOP500 log-linear trend fits and exaflop projections"
    }

    fn seed(&self) -> u64 {
        0x70500
    }

    fn task_labels(&self) -> Vec<String> {
        top500::all_series()
            .iter()
            .map(|&s| top500::series_label(s).to_string())
            .collect()
    }

    fn run_slot(&self, ctx: TaskCtx) -> Vec<f64> {
        top500::measure_series(top500::all_series()[ctx.index])
    }

    fn finalize(&self, slots: &[Vec<f64>]) -> Vec<f64> {
        slots.iter().flat_map(|p| p.iter().copied()).collect()
    }

    fn pinned_digest(&self) -> Option<u64> {
        Some(TOP500_TRENDS_DIGEST)
    }
}

/// A cheap synthetic campaign for exercising the driver itself: each
/// slot expands its SplitMix64-derived seed into three floats. Costs
/// microseconds per slot, so kill/resume and shard proptests can churn
/// through hundreds of runs.
pub struct Selftest;

/// Task count of the [`Selftest`] campaign.
pub const SELFTEST_TASKS: usize = 16;

impl Campaign for Selftest {
    fn name(&self) -> &'static str {
        // Deliberately unpinned: selftest payloads are seed-derived
        // sentinels, not figure data.
        "selftest" // mb-check: allow(digest-pin)
    }

    fn description(&self) -> &'static str {
        "Synthetic driver-validation campaign (seed-derived payloads, instant slots)"
    }

    fn seed(&self) -> u64 {
        0x5E1F
    }

    fn task_labels(&self) -> Vec<String> {
        (0..SELFTEST_TASKS).map(|i| format!("slot{i}")).collect()
    }

    fn run_slot(&self, ctx: TaskCtx) -> Vec<f64> {
        // Deterministic poison hook for the quarantine machinery: when
        // MB_SELFTEST_POISON names this slot, the slot panics on every
        // attempt — the "crashes its worker K times in a row" case the
        // supervisor must fence off instead of retrying forever. The
        // contained sweep turns the panic into TaskFailed, the driver
        // into exit code 4.
        if let Ok(poison) = std::env::var("MB_SELFTEST_POISON") {
            if poison
                .split(',')
                .any(|p| p.trim().parse::<usize>() == Ok(ctx.index))
            {
                panic!("poisoned slot {} (MB_SELFTEST_POISON)", ctx.index);
            }
        }
        // Three deterministic, finite values per slot: mantissa-spread
        // fractions of the slot seed and its index mix.
        let frac = |x: u64| (x >> 11) as f64 / (1u64 << 53) as f64;
        let mixed = ctx.seed ^ (ctx.index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        vec![
            frac(ctx.seed),
            frac(mixed),
            ctx.index as f64 + 0.5,
        ]
    }

    fn finalize(&self, slots: &[Vec<f64>]) -> Vec<f64> {
        slots.iter().flat_map(|p| p.iter().copied()).collect()
    }

    fn pinned_digest(&self) -> Option<u64> {
        None
    }

    fn payload_width(&self) -> Option<usize> {
        Some(3)
    }
}

/// Every registered campaign, in listing order: quick grids, the five
/// paper grids, then the unparameterised campaigns.
pub fn registry() -> Vec<Box<dyn Campaign>> {
    vec![
        Box::new(Fig3Scaling { grid: Grid::Quick }),
        Box::new(Fig3Faulted { grid: Grid::Quick }),
        Box::new(Fig5Anomaly::new(Grid::Quick)),
        Box::new(Fig7Tuning { grid: Grid::Quick }),
        Box::new(Table2Extended { grid: Grid::Quick }),
        Box::new(Fig3Scaling { grid: Grid::Paper }),
        Box::new(Fig3Faulted { grid: Grid::Paper }),
        Box::new(Fig5Anomaly::new(Grid::Paper)),
        Box::new(Fig7Tuning { grid: Grid::Paper }),
        Box::new(Table2Extended { grid: Grid::Paper }),
        Box::new(Top500Trends),
        Box::new(Selftest),
    ]
}

/// Looks a campaign up by name.
pub fn find(name: &str) -> Option<Box<dyn Campaign>> {
    registry().into_iter().find(|c| c.name() == name)
}
