//! `mb-lab` CLI — run, shard, merge and digest experiment campaigns.
//!
//! ```text
//! mb-lab list
//! mb-lab run <campaign> --journal <path> [--shard i/N] [--task-delay-ms d]
//!        [--max-slots n] [--times]
//! mb-lab merge <out> <in>...
//! mb-lab digest <journal> [--expect 0xHEX] [--check]
//! ```
//!
//! The shard assignment comes from `--shard i/N` or, failing that, the
//! `MB_SHARD` environment variable (same syntax); default `0/1`. A
//! malformed value in either place is a hard error — a worker silently
//! re-running the whole grid solo is exactly the kind of
//! measuring-something-else failure the campaign machinery exists to
//! rule out. `--max-slots n` (or `MB_MAX_SLOTS`) bounds how many slots
//! one invocation executes so CI can smoke a truncated paper shard;
//! `--times` prints per-slot wall times. Worker threads follow the
//! workspace-wide `MB_THREADS` variable.

use mb_lab::{campaign, driver, journal};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  mb-lab list\n  mb-lab run <campaign> --journal <path> \
         [--shard i/N] [--task-delay-ms d] [--max-slots n] [--times]\n  \
         mb-lab merge <out> <in>...\n  \
         mb-lab digest <journal> [--expect 0xHEX] [--check]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("digest") => cmd_digest(&args[1..]),
        _ => usage(),
    }
}

fn cmd_list() -> ExitCode {
    for c in campaign::registry() {
        let pinned = match c.pinned_digest() {
            Some(d) => format!("digest {d:#018x}"),
            None => "unpinned".to_string(),
        };
        println!(
            "{:<20} {:>3} tasks  {}  {}",
            c.name(),
            c.task_labels().len(),
            pinned,
            c.description()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let mut journal_path: Option<PathBuf> = None;
    let mut shard: Option<driver::Shard> = None;
    let mut task_delay_ms = 0u64;
    let mut max_slots: Option<usize> = None;
    let mut show_times = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--journal" if i + 1 < args.len() => {
                journal_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--shard" if i + 1 < args.len() => {
                let Some(s) = driver::Shard::parse(&args[i + 1]) else {
                    eprintln!("mb-lab: bad --shard '{}': want i/N with i < N", args[i + 1]);
                    return ExitCode::from(2);
                };
                shard = Some(s);
                i += 2;
            }
            "--task-delay-ms" if i + 1 < args.len() => {
                let Ok(d) = args[i + 1].parse() else {
                    eprintln!("mb-lab: bad --task-delay-ms '{}'", args[i + 1]);
                    return ExitCode::from(2);
                };
                task_delay_ms = d;
                i += 2;
            }
            "--max-slots" if i + 1 < args.len() => {
                let Ok(n) = args[i + 1].parse() else {
                    eprintln!("mb-lab: bad --max-slots '{}'", args[i + 1]);
                    return ExitCode::from(2);
                };
                max_slots = Some(n);
                i += 2;
            }
            "--times" => {
                show_times = true;
                i += 1;
            }
            other => {
                eprintln!("mb-lab: unknown run option '{other}'");
                return usage();
            }
        }
    }
    let Some(journal_path) = journal_path else {
        eprintln!("mb-lab: run requires --journal <path>");
        return usage();
    };
    // Env fallbacks mirror the flags and share their validation: a
    // malformed value is a hard error, never a silent default — a
    // sharded worker that quietly runs the whole grid solo corrupts
    // the experiment it thinks it is contributing to.
    let shard = match shard {
        Some(s) => s,
        None => match std::env::var("MB_SHARD") {
            Ok(v) => match driver::Shard::parse(&v) {
                Some(s) => s,
                None => {
                    eprintln!("mb-lab: bad MB_SHARD '{v}': want i/N with i < N");
                    return ExitCode::from(2);
                }
            },
            Err(_) => driver::Shard::solo(),
        },
    };
    let max_slots = match max_slots {
        Some(n) => Some(n),
        None => match std::env::var("MB_MAX_SLOTS") {
            Ok(v) => match v.parse() {
                Ok(n) => Some(n),
                Err(_) => {
                    eprintln!("mb-lab: bad MB_MAX_SLOTS '{v}': want a slot count");
                    return ExitCode::from(2);
                }
            },
            Err(_) => None,
        },
    };

    let Some(c) = campaign::find(name) else {
        eprintln!("mb-lab: unknown campaign '{name}' (try `mb-lab list`)");
        return ExitCode::FAILURE;
    };
    let opts = driver::RunOptions {
        shard,
        task_delay_ms,
        max_slots,
    };
    match driver::run_campaign_with(c.as_ref(), &journal_path, &opts) {
        Ok(outcome) => {
            if outcome.recovered_torn_tail {
                eprintln!("mb-lab: dropped a torn journal tail (crash recovery)");
            }
            if show_times {
                let labels = c.task_labels();
                for &(slot, secs) in &outcome.slot_secs {
                    println!("  slot {slot:>4} {:<24} {secs:>9.4}s", labels[slot]);
                }
            }
            if !outcome.slot_secs.is_empty() {
                let total: f64 = outcome.slot_secs.iter().map(|&(_, s)| s).sum();
                let peak = outcome
                    .slot_secs
                    .iter()
                    .map(|&(_, s)| s)
                    .fold(0.0_f64, f64::max);
                println!(
                    "{}: {} slot(s) in {total:.3}s (mean {:.4}s, max {peak:.4}s)",
                    c.name(),
                    outcome.slot_secs.len(),
                    total / outcome.slot_secs.len() as f64
                );
            }
            print!(
                "{}: shard {}/{}: {} replayed, {} executed",
                c.name(),
                shard.index,
                shard.count,
                outcome.replayed,
                outcome.executed
            );
            match outcome.digest {
                Some(d) => println!(", digest {d:#018x}"),
                None if outcome.remaining > 0 => {
                    println!(", {} still missing (bounded run; rerun to continue)", outcome.remaining)
                }
                None => println!(" (partial shard; merge to finalize)"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mb-lab: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_merge(args: &[String]) -> ExitCode {
    if args.len() < 2 {
        return usage();
    }
    let out = Path::new(&args[0]);
    let inputs: Vec<PathBuf> = args[1..].iter().map(PathBuf::from).collect();
    match journal::merge(out, &inputs) {
        Ok(merged) => {
            println!(
                "merged {} shard(s) -> {} ({} records, campaign {})",
                inputs.len(),
                out.display(),
                merged.records.len(),
                merged.header.campaign
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mb-lab: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_digest(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut expect: Option<u64> = None;
    let mut check = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--expect" if i + 1 < args.len() => {
                let text = args[i + 1].trim_start_matches("0x");
                let Ok(v) = u64::from_str_radix(text, 16) else {
                    eprintln!("mb-lab: bad --expect '{}'", args[i + 1]);
                    return ExitCode::from(2);
                };
                expect = Some(v);
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            other => {
                eprintln!("mb-lab: unknown digest option '{other}'");
                return usage();
            }
        }
    }
    let loaded = match journal::Journal::load(Path::new(path)) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("mb-lab: {e}");
            return ExitCode::FAILURE;
        }
    };
    let digest = match driver::digest_journal(&loaded) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mb-lab: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}: digest {digest:#018x}", loaded.header.campaign);
    if let Some(want) = expect {
        if digest != want {
            eprintln!("mb-lab: digest mismatch: got {digest:#018x}, expected {want:#018x}");
            return ExitCode::FAILURE;
        }
    }
    if check {
        let pinned = campaign::find(&loaded.header.campaign).and_then(|c| c.pinned_digest());
        match pinned {
            Some(want) if want == digest => println!("pinned digest check: ok"),
            Some(want) => {
                eprintln!(
                    "mb-lab: pinned digest mismatch: got {digest:#018x}, pinned {want:#018x}"
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("mb-lab: campaign '{}' has no pinned digest", loaded.header.campaign);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
