//! `mb-lab` CLI — run, shard, supervise, serve, merge and digest
//! experiment campaigns.
//!
//! ```text
//! mb-lab list
//! mb-lab run <campaign> --journal <path> [--shard i/N] [--task-delay-ms d]
//!        [--max-slots n] [--skip-slots a,b,c] [--times]
//! mb-lab supervise <campaign> --dir <path> [--shards N] [--poll-ms d]
//!        [--hang-polls n] [--poison-threshold k] [--max-restarts n]
//!        [--backoff-base-ms d] [--backoff-cap-ms d] [--max-polls n]
//!        [--task-delay-ms d] [--chaos-kills n]
//! mb-lab serve --dir <path> [--bind host:port] [--queue-cap n] [--workers n]
//!        [--poll-ms d] [--task-delay-ms d]
//! mb-lab submit <campaign> --addr host:port [--shards N]
//! mb-lab status [job] --addr host:port
//! mb-lab watch <job> --addr host:port
//! mb-lab cancel <job> --addr host:port
//! mb-lab fetch <job> <segment> --addr host:port
//! mb-lab ping --addr host:port
//! mb-lab shutdown --addr host:port
//! mb-lab export <journal> <segment> [--from k]
//! mb-lab ingest <journal> <segment>
//! mb-lab merge <out> <in>...
//! mb-lab digest <journal> [--expect 0xHEX] [--check]
//! ```
//!
//! The client subcommands (`submit` … `shutdown`) speak the `mbsrv1`
//! line protocol to an `mb-lab serve` instance; `--addr` falls back
//! to the `MB_ADDR` environment variable.
//!
//! ## Exit codes
//!
//! The exit status is a documented contract (see
//! `mb_simcore::error::exit_code`) so a supervisor can tell *why* a
//! worker died:
//!
//! | code | meaning                                                  |
//! |------|----------------------------------------------------------|
//! | 0    | success                                                  |
//! | 1    | generic failure (e.g. digest mismatch under `--check`)   |
//! | 2    | usage: unknown flag, missing operand, malformed value    |
//! | 3    | journal/segment corruption (chain break, version skew, …)|
//! | 4    | a campaign slot panicked (restartable, maybe poisoned)   |
//! | 5    | env/shard misconfiguration (bad `MB_*`, wrong campaign, a |
//! |      | data dir/journal owned by a live process, …)             |
//! | 6    | `mbsrv1` protocol fault (skew, malformed/oversized frame)|
//! | 7    | server unavailable or busy (typed backpressure; retry)   |
//!
//! The shard assignment comes from `--shard i/N` or, failing that, the
//! `MB_SHARD` environment variable (same syntax); default `0/1`. A
//! malformed value in either place is a hard error — a worker silently
//! re-running the whole grid solo is exactly the kind of
//! measuring-something-else failure the campaign machinery exists to
//! rule out. `--max-slots n` (or `MB_MAX_SLOTS`) bounds how many slots
//! one invocation executes so CI can smoke a truncated paper shard;
//! `--times` prints per-slot wall times. Worker threads follow the
//! workspace-wide `MB_THREADS` variable.

use mb_lab::{campaign, client, driver, journal, serve, supervise, transport};
use mb_simcore::error::exit_code;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  mb-lab list\n  mb-lab run <campaign> --journal <path> \
         [--shard i/N] [--task-delay-ms d] [--max-slots n] [--skip-slots a,b,c] [--times]\n  \
         mb-lab supervise <campaign> --dir <path> [--shards N] [--poll-ms d] [--hang-polls n]\n    \
         [--poison-threshold k] [--max-restarts n] [--backoff-base-ms d] [--backoff-cap-ms d]\n    \
         [--max-polls n] [--task-delay-ms d] [--chaos-kills n]\n  \
         mb-lab serve --dir <path> [--bind host:port] [--queue-cap n] [--workers n]\n    \
         [--poll-ms d] [--task-delay-ms d]\n  \
         mb-lab submit <campaign> --addr host:port [--shards N]\n  \
         mb-lab status [job] --addr host:port\n  \
         mb-lab watch <job> --addr host:port\n  \
         mb-lab cancel <job> --addr host:port\n  \
         mb-lab fetch <job> <segment> --addr host:port\n  \
         mb-lab ping --addr host:port\n  \
         mb-lab shutdown --addr host:port\n  \
         mb-lab export <journal> <segment> [--from k]\n  \
         mb-lab ingest <journal> <segment>\n  \
         mb-lab merge <out> <in>...\n  \
         mb-lab digest <journal> [--expect 0xHEX] [--check]"
    );
    ExitCode::from(exit_code::USAGE)
}

/// Prints a journal-layer error and maps it to its documented code.
fn fail_journal(e: &journal::JournalError) -> ExitCode {
    eprintln!("mb-lab: {e}");
    ExitCode::from(e.exit_code())
}

/// Prints a transport-layer error and maps it to its documented code.
fn fail_transport(e: &transport::TransportError) -> ExitCode {
    eprintln!("mb-lab: {e}");
    ExitCode::from(e.exit_code())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("supervise") => cmd_supervise(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("cancel") => cmd_cancel(&args[1..]),
        Some("fetch") => cmd_fetch(&args[1..]),
        Some("ping") => cmd_ping(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("digest") => cmd_digest(&args[1..]),
        _ => usage(),
    }
}

/// Prints a client-layer error and maps it to its documented code.
fn fail_client(e: &client::ClientError) -> ExitCode {
    eprintln!("mb-lab: {e}");
    ExitCode::from(e.exit_code())
}

/// Splits client-command args into `(positional operands, addr)`:
/// `--addr host:port` with an `MB_ADDR` fallback, anything else
/// positional. Errors (usage / missing addr) come back as exit codes.
fn parse_client_args(args: &[String], positional_max: usize) -> Result<(Vec<String>, String), ExitCode> {
    let mut positional = Vec::new();
    let mut addr: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" if i + 1 < args.len() => {
                addr = Some(args[i + 1].clone());
                i += 2;
            }
            "--addr" => {
                eprintln!("mb-lab: --addr requires a value");
                return Err(ExitCode::from(exit_code::USAGE));
            }
            other if other.starts_with("--") => {
                eprintln!("mb-lab: unknown client option '{other}'");
                return Err(usage());
            }
            other => {
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    if positional.len() > positional_max {
        eprintln!("mb-lab: too many operands");
        return Err(usage());
    }
    let addr = match addr.or_else(|| std::env::var("MB_ADDR").ok()) {
        Some(a) => a,
        None => {
            eprintln!("mb-lab: no server address (pass --addr host:port or set MB_ADDR)");
            return Err(ExitCode::from(exit_code::ENV_MISCONFIG));
        }
    };
    Ok((positional, addr))
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut dir: Option<PathBuf> = None;
    let mut policy = serve::ServePolicy::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |flag: &str| -> Result<&String, ExitCode> {
            args.get(i + 1).ok_or_else(|| {
                eprintln!("mb-lab: {flag} requires a value");
                ExitCode::from(exit_code::USAGE)
            })
        };
        macro_rules! numeric {
            ($field:expr) => {{
                let raw = match value(flag) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                match raw.parse() {
                    Ok(v) => $field = v,
                    Err(_) => {
                        eprintln!("mb-lab: bad {flag} '{raw}'");
                        return ExitCode::from(exit_code::USAGE);
                    }
                }
                i += 2;
            }};
        }
        match flag {
            "--dir" => {
                let raw = match value(flag) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                dir = Some(PathBuf::from(raw));
                i += 2;
            }
            "--bind" => {
                let raw = match value(flag) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                policy.bind = raw.clone();
                i += 2;
            }
            "--queue-cap" => numeric!(policy.queue_cap),
            "--workers" => numeric!(policy.workers),
            "--poll-ms" => numeric!(policy.supervise.poll_ms),
            "--task-delay-ms" => numeric!(policy.supervise.task_delay_ms),
            other => {
                eprintln!("mb-lab: unknown serve option '{other}'");
                return usage();
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("mb-lab: serve requires --dir <path>");
        return usage();
    };
    match seed_from_env() {
        Ok(Some(seed)) => policy.supervise.seed = seed,
        Ok(None) => {}
        Err(code) => return code,
    }
    let worker_exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mb-lab: cannot locate own binary: {e}");
            return ExitCode::from(exit_code::ENV_MISCONFIG);
        }
    };
    match serve::serve(&dir, &worker_exe, &policy) {
        Ok(summary) => {
            println!(
                "mb-lab serve: exiting: {} job(s) known, {} done, {} failed, {} cancelled, \
                 {} left for the next server",
                summary.jobs, summary.done, summary.failed, summary.cancelled, summary.queued_left
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mb-lab: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn cmd_submit(args: &[String]) -> ExitCode {
    // Positional: the campaign. --shards rides along with --addr.
    let mut shards = 2u32;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" if i + 1 < args.len() => {
                let Ok(n) = args[i + 1].parse() else {
                    eprintln!("mb-lab: bad --shards '{}'", args[i + 1]);
                    return ExitCode::from(exit_code::USAGE);
                };
                shards = n;
                i += 2;
            }
            other => {
                rest.push(other.to_string());
                i += 1;
            }
        }
    }
    let (positional, addr) = match parse_client_args(&rest, 1) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let Some(campaign_name) = positional.first() else {
        eprintln!("mb-lab: submit requires a campaign name");
        return usage();
    };
    if shards == 0 {
        eprintln!("mb-lab: --shards must be at least 1");
        return ExitCode::from(exit_code::USAGE);
    }
    match client::submit(&addr, campaign_name, shards) {
        Ok((job, queued)) => {
            println!("submitted {job} ({campaign_name}, {shards} shard(s), queue depth {queued})");
            ExitCode::SUCCESS
        }
        Err(e) => fail_client(&e),
    }
}

fn print_job(s: &mb_lab::JobStatus) {
    let digest = match s.digest {
        Some(d) => format!("  digest {d:#018x}"),
        None => String::new(),
    };
    println!(
        "{:<6} {:<20} {:>2} shard(s)  {:<9} {:>4}/{:<4}{digest}",
        s.job, s.campaign, s.shards, s.state.as_str(), s.done, s.total
    );
}

fn cmd_status(args: &[String]) -> ExitCode {
    let (positional, addr) = match parse_client_args(args, 1) {
        Ok(v) => v,
        Err(code) => return code,
    };
    match client::status(&addr, positional.first().map(String::as_str)) {
        Ok(jobs) => {
            for s in &jobs {
                print_job(s);
            }
            if positional.is_empty() {
                println!("{} job(s)", jobs.len());
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail_client(&e),
    }
}

fn cmd_watch(args: &[String]) -> ExitCode {
    let (positional, addr) = match parse_client_args(args, 1) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let Some(job) = positional.first() else {
        eprintln!("mb-lab: watch requires a job id");
        return usage();
    };
    let mut last_done = usize::MAX;
    let outcome = client::watch(&addr, job, |done, total, eta_ms| {
        if done != last_done {
            last_done = done;
            match eta_ms {
                Some(eta) => println!("{job}: {done}/{total} slot(s), eta {:.1}s", eta as f64 / 1000.0),
                None => println!("{job}: {done}/{total} slot(s)"),
            }
        }
    });
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => return fail_client(&e),
    };
    use mb_lab::JobState;
    match outcome.state {
        JobState::Done => {
            match outcome.digest {
                Some(d) if outcome.checked => {
                    println!("{job}: done, digest {d:#018x} (pinned digest check: ok)")
                }
                Some(d) => println!("{job}: done, digest {d:#018x} (no pin registered)"),
                None => println!(
                    "{job}: done (degraded: {})",
                    outcome.detail.as_deref().unwrap_or("digest withheld")
                ),
            }
            ExitCode::SUCCESS
        }
        state => {
            eprintln!(
                "mb-lab: {job} ended {}: {}",
                state.as_str(),
                outcome.detail.as_deref().unwrap_or("<no detail>")
            );
            ExitCode::FAILURE
        }
    }
}

fn cmd_cancel(args: &[String]) -> ExitCode {
    let (positional, addr) = match parse_client_args(args, 1) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let Some(job) = positional.first() else {
        eprintln!("mb-lab: cancel requires a job id");
        return usage();
    };
    match client::cancel(&addr, job) {
        Ok(s) => {
            print_job(&s);
            ExitCode::SUCCESS
        }
        Err(e) => fail_client(&e),
    }
}

fn cmd_fetch(args: &[String]) -> ExitCode {
    let (positional, addr) = match parse_client_args(args, 2) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let (Some(job), Some(out)) = (positional.first(), positional.get(1)) else {
        eprintln!("mb-lab: fetch requires a job id and an output segment path");
        return usage();
    };
    match client::fetch(&addr, job, Path::new(out)) {
        Ok(records) => {
            println!("fetched {records} record(s) -> {out} (chain-verified)");
            ExitCode::SUCCESS
        }
        Err(e) => fail_client(&e),
    }
}

fn cmd_ping(args: &[String]) -> ExitCode {
    let (_, addr) = match parse_client_args(args, 0) {
        Ok(v) => v,
        Err(code) => return code,
    };
    match client::ping(&addr) {
        Ok(()) => {
            println!("{addr}: alive");
            ExitCode::SUCCESS
        }
        Err(e) => fail_client(&e),
    }
}

fn cmd_shutdown(args: &[String]) -> ExitCode {
    let (_, addr) = match parse_client_args(args, 0) {
        Ok(v) => v,
        Err(code) => return code,
    };
    match client::shutdown(&addr) {
        Ok(running) => {
            println!("{addr}: stopping ({running} job(s) draining)");
            ExitCode::SUCCESS
        }
        Err(e) => fail_client(&e),
    }
}

fn cmd_list() -> ExitCode {
    for c in campaign::registry() {
        let pinned = match c.pinned_digest() {
            Some(d) => format!("digest {d:#018x}"),
            None => "unpinned".to_string(),
        };
        println!(
            "{:<20} {:>3} tasks  {}  {}",
            c.name(),
            c.task_labels().len(),
            pinned,
            c.description()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let mut journal_path: Option<PathBuf> = None;
    let mut shard: Option<driver::Shard> = None;
    let mut task_delay_ms = 0u64;
    let mut max_slots: Option<usize> = None;
    let mut skip_slots: Vec<usize> = Vec::new();
    let mut show_times = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--skip-slots" if i + 1 < args.len() => {
                for part in args[i + 1].split(',') {
                    let Ok(slot) = part.trim().parse() else {
                        eprintln!("mb-lab: bad --skip-slots entry '{part}'");
                        return ExitCode::from(exit_code::USAGE);
                    };
                    skip_slots.push(slot);
                }
                i += 2;
            }
            "--journal" if i + 1 < args.len() => {
                journal_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--shard" if i + 1 < args.len() => {
                let Some(s) = driver::Shard::parse(&args[i + 1]) else {
                    eprintln!("mb-lab: bad --shard '{}': want i/N with i < N", args[i + 1]);
                    return ExitCode::from(exit_code::USAGE);
                };
                shard = Some(s);
                i += 2;
            }
            "--task-delay-ms" if i + 1 < args.len() => {
                let Ok(d) = args[i + 1].parse() else {
                    eprintln!("mb-lab: bad --task-delay-ms '{}'", args[i + 1]);
                    return ExitCode::from(exit_code::USAGE);
                };
                task_delay_ms = d;
                i += 2;
            }
            "--max-slots" if i + 1 < args.len() => {
                let Ok(n) = args[i + 1].parse() else {
                    eprintln!("mb-lab: bad --max-slots '{}'", args[i + 1]);
                    return ExitCode::from(exit_code::USAGE);
                };
                max_slots = Some(n);
                i += 2;
            }
            "--times" => {
                show_times = true;
                i += 1;
            }
            other => {
                eprintln!("mb-lab: unknown run option '{other}'");
                return usage();
            }
        }
    }
    let Some(journal_path) = journal_path else {
        eprintln!("mb-lab: run requires --journal <path>");
        return usage();
    };
    // Env fallbacks mirror the flags and share their validation: a
    // malformed value is a hard error, never a silent default — a
    // sharded worker that quietly runs the whole grid solo corrupts
    // the experiment it thinks it is contributing to.
    let shard = match shard {
        Some(s) => s,
        None => match std::env::var("MB_SHARD") {
            Ok(v) => match driver::Shard::parse(&v) {
                Some(s) => s,
                None => {
                    eprintln!("mb-lab: bad MB_SHARD '{v}': want i/N with i < N");
                    return ExitCode::from(exit_code::ENV_MISCONFIG);
                }
            },
            Err(_) => driver::Shard::solo(),
        },
    };
    let max_slots = match max_slots {
        Some(n) => Some(n),
        None => match std::env::var("MB_MAX_SLOTS") {
            Ok(v) => match v.parse() {
                Ok(n) => Some(n),
                Err(_) => {
                    eprintln!("mb-lab: bad MB_MAX_SLOTS '{v}': want a slot count");
                    return ExitCode::from(exit_code::ENV_MISCONFIG);
                }
            },
            Err(_) => None,
        },
    };

    let Some(c) = campaign::find(name) else {
        eprintln!("mb-lab: unknown campaign '{name}' (try `mb-lab list`)");
        return ExitCode::from(exit_code::ENV_MISCONFIG);
    };
    let opts = driver::RunOptions {
        shard,
        task_delay_ms,
        max_slots,
        skip_slots,
    };
    match driver::run_campaign_with(c.as_ref(), &journal_path, &opts) {
        Ok(outcome) => {
            if outcome.recovered_torn_tail {
                eprintln!("mb-lab: dropped a torn journal tail (crash recovery)");
            }
            if show_times {
                let labels = c.task_labels();
                for &(slot, secs) in &outcome.slot_secs {
                    println!("  slot {slot:>4} {:<24} {secs:>9.4}s", labels[slot]);
                }
            }
            if !outcome.slot_secs.is_empty() {
                let total: f64 = outcome.slot_secs.iter().map(|&(_, s)| s).sum();
                let peak = outcome
                    .slot_secs
                    .iter()
                    .map(|&(_, s)| s)
                    .fold(0.0_f64, f64::max);
                println!(
                    "{}: {} slot(s) in {total:.3}s (mean {:.4}s, max {peak:.4}s)",
                    c.name(),
                    outcome.slot_secs.len(),
                    total / outcome.slot_secs.len() as f64
                );
            }
            print!(
                "{}: shard {}/{}: {} replayed, {} executed",
                c.name(),
                shard.index,
                shard.count,
                outcome.replayed,
                outcome.executed
            );
            if outcome.skipped > 0 {
                print!(", {} skipped (quarantined)", outcome.skipped);
            }
            match outcome.digest {
                Some(d) => println!(", digest {d:#018x}"),
                None if outcome.remaining > 0 => {
                    println!(", {} still missing (bounded run; rerun to continue)", outcome.remaining)
                }
                None => println!(" (partial shard; merge to finalize)"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail_journal(&e),
    }
}

fn cmd_merge(args: &[String]) -> ExitCode {
    if args.len() < 2 {
        return usage();
    }
    let out = Path::new(&args[0]);
    let inputs: Vec<PathBuf> = args[1..].iter().map(PathBuf::from).collect();
    match journal::merge(out, &inputs) {
        Ok(merged) => {
            println!(
                "merged {} shard(s) -> {} ({} records, campaign {})",
                inputs.len(),
                out.display(),
                merged.records.len(),
                merged.header.campaign
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail_journal(&e),
    }
}

fn cmd_digest(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut expect: Option<u64> = None;
    let mut check = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--expect" if i + 1 < args.len() => {
                let text = args[i + 1].trim_start_matches("0x");
                let Ok(v) = u64::from_str_radix(text, 16) else {
                    eprintln!("mb-lab: bad --expect '{}'", args[i + 1]);
                    return ExitCode::from(exit_code::USAGE);
                };
                expect = Some(v);
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            other => {
                eprintln!("mb-lab: unknown digest option '{other}'");
                return usage();
            }
        }
    }
    let loaded = match journal::Journal::load(Path::new(path)) {
        Ok(j) => j,
        Err(e) => return fail_journal(&e),
    };
    let digest = match driver::digest_journal(&loaded) {
        Ok(d) => d,
        Err(e) => return fail_journal(&e),
    };
    println!("{}: digest {digest:#018x}", loaded.header.campaign);
    if let Some(want) = expect {
        if digest != want {
            eprintln!("mb-lab: digest mismatch: got {digest:#018x}, expected {want:#018x}");
            return ExitCode::FAILURE;
        }
    }
    if check {
        let pinned = campaign::find(&loaded.header.campaign).and_then(|c| c.pinned_digest());
        match pinned {
            Some(want) if want == digest => println!("pinned digest check: ok"),
            Some(want) => {
                eprintln!(
                    "mb-lab: pinned digest mismatch: got {digest:#018x}, pinned {want:#018x}"
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("mb-lab: campaign '{}' has no pinned digest", loaded.header.campaign);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Parses `MB_SEED` (decimal or `0x`-prefixed hex) for the supervise
/// backoff/chaos schedules; absent means the policy default.
fn seed_from_env() -> Result<Option<u64>, ExitCode> {
    match std::env::var("MB_SEED") {
        Err(_) => Ok(None),
        Ok(v) => {
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            match parsed {
                Ok(seed) => Ok(Some(seed)),
                Err(_) => {
                    eprintln!("mb-lab: bad MB_SEED '{v}': want decimal or 0xHEX");
                    Err(ExitCode::from(exit_code::ENV_MISCONFIG))
                }
            }
        }
    }
}

fn cmd_supervise(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let mut dir: Option<PathBuf> = None;
    let mut policy = supervise::SupervisePolicy::default();
    // Every numeric knob shares one parse-or-usage-error path.
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |flag: &str| -> Result<&String, ExitCode> {
            args.get(i + 1).ok_or_else(|| {
                eprintln!("mb-lab: {flag} requires a value");
                ExitCode::from(exit_code::USAGE)
            })
        };
        macro_rules! numeric {
            ($field:expr) => {{
                let raw = match value(flag) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                match raw.parse() {
                    Ok(v) => $field = v,
                    Err(_) => {
                        eprintln!("mb-lab: bad {flag} '{raw}'");
                        return ExitCode::from(exit_code::USAGE);
                    }
                }
                i += 2;
            }};
        }
        match flag {
            "--dir" => {
                let raw = match value(flag) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                dir = Some(PathBuf::from(raw));
                i += 2;
            }
            "--shards" => numeric!(policy.shards),
            "--poll-ms" => numeric!(policy.poll_ms),
            "--hang-polls" => numeric!(policy.hang_polls),
            "--poison-threshold" => numeric!(policy.poison_threshold),
            "--max-restarts" => numeric!(policy.max_restarts),
            "--backoff-base-ms" => numeric!(policy.backoff_base_ms),
            "--backoff-cap-ms" => numeric!(policy.backoff_cap_ms),
            "--max-polls" => numeric!(policy.max_polls),
            "--task-delay-ms" => numeric!(policy.task_delay_ms),
            "--chaos-kills" => numeric!(policy.chaos_kills),
            other => {
                eprintln!("mb-lab: unknown supervise option '{other}'");
                return usage();
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("mb-lab: supervise requires --dir <path>");
        return usage();
    };
    if policy.shards == 0 {
        eprintln!("mb-lab: --shards must be at least 1");
        return ExitCode::from(exit_code::USAGE);
    }
    match seed_from_env() {
        Ok(Some(seed)) => policy.seed = seed,
        Ok(None) => {}
        Err(code) => return code,
    }
    // Workers are this very binary.
    let worker_exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mb-lab: cannot locate own binary: {e}");
            return ExitCode::from(exit_code::ENV_MISCONFIG);
        }
    };
    match supervise::supervise(name, &dir, &worker_exe, &policy) {
        Ok(report) => {
            let restarts: u32 = report.per_shard.iter().map(|s| s.crashes).sum();
            println!(
                "{name}: supervised {} shard(s): {} ({} restart(s), {} hang(s), {} chaos kill(s))",
                report.shards,
                report.accounting.summary(),
                restarts,
                report.per_shard.iter().map(|s| s.hangs).sum::<u32>(),
                report.chaos_kills
            );
            match report.digest {
                Some(d) if report.digest_checked => {
                    println!("merged digest {d:#018x} (pinned digest check: ok)")
                }
                Some(d) => println!("merged digest {d:#018x} (no pin registered)"),
                None => println!(
                    "degraded completion: {} slot(s) quarantined, digest withheld",
                    report.quarantined.len()
                ),
            }
            println!("report: {}", dir.join("report.json").display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mb-lab: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn cmd_export(args: &[String]) -> ExitCode {
    let (Some(journal_path), Some(segment)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let mut from = 0usize;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--from" if i + 1 < args.len() => {
                let Ok(k) = args[i + 1].parse() else {
                    eprintln!("mb-lab: bad --from '{}'", args[i + 1]);
                    return ExitCode::from(exit_code::USAGE);
                };
                from = k;
                i += 2;
            }
            other => {
                eprintln!("mb-lab: unknown export option '{other}'");
                return usage();
            }
        }
    }
    match transport::export_segment(Path::new(journal_path), from, Path::new(segment)) {
        Ok(seg) => {
            println!(
                "exported {} record(s) [{}..{}] of {} -> {}",
                seg.records.len(),
                seg.from,
                seg.from + seg.records.len(),
                journal_path,
                segment
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail_transport(&e),
    }
}

fn cmd_ingest(args: &[String]) -> ExitCode {
    let (Some(journal_path), Some(segment)) = (args.first(), args.get(1)) else {
        return usage();
    };
    if args.len() > 2 {
        eprintln!("mb-lab: unknown ingest option '{}'", args[2]);
        return usage();
    }
    match transport::ingest_segment(Path::new(journal_path), Path::new(segment)) {
        Ok(out) => {
            println!(
                "ingested {} -> {}: {} appended, {} duplicate(s) verified",
                segment, journal_path, out.appended, out.duplicates
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail_transport(&e),
    }
}
