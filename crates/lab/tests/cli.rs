//! CLI contract tests for `mb-lab`: environment-variable validation
//! (a malformed `MB_SHARD`/`MB_MAX_SLOTS` must be a hard error, never a
//! silent solo run), bounded-run truncation, and the registry listing
//! the paper campaigns.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mb-lab-cli-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A command with the sharding environment scrubbed, so the test
/// process's own environment can never leak into an assertion.
fn mb_lab() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mb-lab"));
    cmd.env_remove("MB_SHARD")
        .env_remove("MB_MAX_SLOTS")
        .env_remove("MB_SELFTEST_POISON");
    cmd
}

#[test]
fn list_shows_every_paper_campaign_with_a_pinned_digest() {
    let output = mb_lab().arg("list").output().expect("run mb-lab list");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in [
        "fig3-paper",
        "fig3-faulted-paper",
        "fig5-paper",
        "fig7-paper",
        "table2-paper",
    ] {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("`mb-lab list` does not show '{name}':\n{stdout}"));
        assert!(
            line.contains("digest 0x"),
            "paper campaign '{name}' is listed without a pinned digest: {line}"
        );
    }
}

#[test]
fn malformed_mb_shard_is_a_hard_error() {
    let dir = scratch("bad-shard");
    for bad in ["2", "3/2", "x/y", "1/0", ""] {
        let journal = dir.join("never-created.journal");
        let output = mb_lab()
            .args(["run", "selftest", "--journal"])
            .arg(&journal)
            .env("MB_SHARD", bad)
            .output()
            .expect("run mb-lab");
        assert_eq!(
            output.status.code(),
            Some(5),
            "MB_SHARD='{bad}' must exit 5 (env misconfig), not silently run solo"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("bad MB_SHARD") && stderr.contains("want i/N"),
            "MB_SHARD='{bad}' diagnostic missing: {stderr}"
        );
        assert!(
            !journal.exists(),
            "MB_SHARD='{bad}' must fail before touching the journal"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn well_formed_mb_shard_is_honored() {
    let dir = scratch("good-shard");
    let output = mb_lab()
        .args(["run", "selftest", "--journal"])
        .arg(dir.join("shard.journal"))
        .env("MB_SHARD", "1/3")
        .output()
        .expect("run mb-lab");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("shard 1/3") && stdout.contains("partial shard"),
        "MB_SHARD=1/3 must drive a partial shard run: {stdout}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn malformed_max_slots_is_a_hard_error() {
    let dir = scratch("bad-max-slots");
    // The flag spelling is a usage error (2); the env spelling is an
    // environment misconfiguration (5) — same validation, distinct
    // documented exit codes.
    for (flag_value, env_value, code) in [
        (Some("zero"), None, 2),
        (None, Some("-3"), 5),
        (None, Some("1/2"), 5),
    ] {
        let mut cmd = mb_lab();
        cmd.args(["run", "selftest", "--journal"])
            .arg(dir.join("never-created.journal"));
        if let Some(v) = flag_value {
            cmd.args(["--max-slots", v]);
        }
        if let Some(v) = env_value {
            cmd.env("MB_MAX_SLOTS", v);
        }
        let output = cmd.output().expect("run mb-lab");
        assert_eq!(
            output.status.code(),
            Some(code),
            "max-slots flag={flag_value:?} env={env_value:?} must exit {code}"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("max-slots") || stderr.contains("MAX_SLOTS"),
            "diagnostic missing: {stderr}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_exits_3() {
    let dir = scratch("corrupt");
    let journal = dir.join("selftest.journal");
    let output = mb_lab()
        .args(["run", "selftest", "--journal"])
        .arg(&journal)
        .output()
        .expect("seed a valid journal");
    assert!(output.status.success());
    // Flip one hex digit of a mid-journal chain value: the digest
    // command must refuse the journal with the documented corruption
    // code, not quietly recompute over bad records.
    let text = fs::read_to_string(&journal).expect("read journal");
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let victim = lines.iter().position(|l| l.starts_with("r ")).expect("a record line") + 2;
    let tampered = lines[victim].clone();
    let last = tampered.chars().last().expect("nonempty record");
    let flipped = if last == '0' { '1' } else { '0' };
    lines[victim] = format!("{}{}", &tampered[..tampered.len() - 1], flipped);
    fs::write(&journal, lines.join("\n") + "\n").expect("tamper journal");
    let output = mb_lab()
        .arg("digest")
        .arg(&journal)
        .output()
        .expect("digest the tampered journal");
    assert_eq!(
        output.status.code(),
        Some(3),
        "chain corruption must exit 3: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_slot_exits_4_with_the_stable_stderr_line() {
    let dir = scratch("poison-exit");
    let output = mb_lab()
        .args(["run", "selftest", "--journal"])
        .arg(dir.join("selftest.journal"))
        .env("MB_SELFTEST_POISON", "5")
        .output()
        .expect("run mb-lab with a poisoned slot");
    assert_eq!(
        output.status.code(),
        Some(4),
        "a panicking slot must exit 4 (slot panic): {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("slot 5 failed:"),
        "the supervisor-parseable diagnostic is part of the contract: {stderr}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resuming_into_a_foreign_campaign_journal_exits_5() {
    let dir = scratch("foreign");
    let journal = dir.join("one.journal");
    let output = mb_lab()
        .args(["run", "selftest", "--journal"])
        .arg(&journal)
        .output()
        .expect("seed a selftest journal");
    assert!(output.status.success());
    // Pointing a different campaign at that journal is a deployment
    // mistake (wrong path wiring), not corruption: exit 5.
    let output = mb_lab()
        .args(["run", "fig3-quick", "--journal"])
        .arg(&journal)
        .output()
        .expect("run the wrong campaign");
    assert_eq!(
        output.status.code(),
        Some(5),
        "campaign/journal mismatch must exit 5: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bounded_run_truncates_then_completes() {
    let dir = scratch("bounded");
    let journal = dir.join("selftest.journal");

    let first = mb_lab()
        .args(["run", "selftest", "--journal"])
        .arg(&journal)
        .args(["--max-slots", "6", "--times"])
        .output()
        .expect("bounded run");
    assert!(first.status.success());
    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(
        stdout.contains("6 executed") && stdout.contains("10 still missing"),
        "bounded run must stop at the bound: {stdout}"
    );
    assert_eq!(
        stdout.lines().filter(|l| l.trim_start().starts_with("slot ")).count(),
        6,
        "--times must print one wall-time line per executed slot: {stdout}"
    );

    // MB_MAX_SLOTS is the env spelling of the same bound.
    let second = mb_lab()
        .args(["run", "selftest", "--journal"])
        .arg(&journal)
        .env("MB_MAX_SLOTS", "4")
        .output()
        .expect("env-bounded run");
    assert!(second.status.success());
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(
        stdout.contains("6 replayed, 4 executed") && stdout.contains("6 still missing"),
        "env-bounded resume must replay then extend: {stdout}"
    );

    let third = mb_lab()
        .args(["run", "selftest", "--journal"])
        .arg(&journal)
        .output()
        .expect("completing run");
    assert!(third.status.success());
    let stdout = String::from_utf8_lossy(&third.stdout);
    assert!(
        stdout.contains("10 replayed, 6 executed") && stdout.contains("digest 0x"),
        "the unbounded rerun must complete and finalize: {stdout}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journal_owned_by_a_live_process_is_refused_with_exit_5() {
    let dir = scratch("lock-live");
    let journal = dir.join("contested.journal");
    // Plant a lockfile owned by this very test process — maximally
    // alive — where `mb-lab run` will try to claim the journal.
    fs::write(
        dir.join("contested.journal.lock"),
        format!("{}\n", std::process::id()),
    )
    .expect("plant lockfile");

    let output = mb_lab()
        .args(["run", "selftest", "--journal"])
        .arg(&journal)
        .output()
        .expect("run against owned journal");
    assert_eq!(
        output.status.code(),
        Some(5),
        "a journal owned by a live process must be refused with exit 5\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("already owned by live process"),
        "ownership diagnostic missing: {stderr}"
    );
    assert!(
        !journal.exists(),
        "the refused run must not have touched the journal"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_lock_from_a_dead_process_is_stolen() {
    let dir = scratch("lock-stale");
    let journal = dir.join("abandoned.journal");
    // Plant lockfiles no live process owns: a pid far beyond pid_max
    // and a garbled one torn mid-write. Both are stale claims the next
    // writer must steal instead of deadlocking forever.
    for stale in ["999999999", "not-a-pid"] {
        fs::write(dir.join("abandoned.journal.lock"), stale).expect("plant stale lockfile");
        let output = mb_lab()
            .args(["run", "selftest", "--journal"])
            .arg(&journal)
            .args(["--max-slots", "2"])
            .output()
            .expect("run against stale lock");
        assert!(
            output.status.success(),
            "a stale lock ('{stale}') must be stolen, not honored\nstderr:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let _ = fs::remove_file(&journal);
    }
    // The lock must not outlive the run that stole it.
    assert!(
        !dir.join("abandoned.journal.lock").exists(),
        "the lockfile must be released when the run exits"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn supervise_dir_owned_by_a_live_process_is_refused_with_exit_5() {
    let dir = scratch("lock-supervise");
    fs::create_dir_all(&dir).expect("create family dir");
    fs::write(
        dir.join("supervise.lock"),
        format!("{}\n", std::process::id()),
    )
    .expect("plant supervise lockfile");

    let output = mb_lab()
        .args(["supervise", "fig3-quick", "--dir"])
        .arg(&dir)
        .output()
        .expect("supervise against owned dir");
    assert_eq!(
        output.status.code(),
        Some(5),
        "a family dir owned by a live process must be refused with exit 5\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("already owned by live process"),
        "ownership diagnostic missing: {stderr}"
    );
    let _ = fs::remove_dir_all(&dir);
}
