//! Golden-fixture tests of the journal file format: header round-trip,
//! torn-tail crash recovery, and the hard-error contract — digest-chain
//! breaks, version skew, foreign campaigns and slot-ownership
//! violations must all fail loudly, never silently skip records.

use mb_lab::journal::{merge, Journal, JournalError, JournalHeader};
use std::fs;
use std::path::PathBuf;

/// A per-test scratch directory under the target-adjacent temp dir,
/// wiped on entry so reruns are deterministic.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mb-lab-journal-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn header(campaign: &str, shard_index: u32, shard_count: u32) -> JournalHeader {
    JournalHeader {
        campaign: campaign.to_string(),
        seed: 0xDEAD_BEEF_1234,
        tasks: 8,
        shard_index,
        shard_count,
    }
}

#[test]
fn header_and_records_round_trip() {
    let dir = scratch("roundtrip");
    let path = dir.join("a.journal");
    let mut j = Journal::create(&path, header("demo", 0, 1)).expect("create");
    j.append(3, &[1.5, -0.25, f64::MIN_POSITIVE]).expect("append");
    j.append(0, &[42.0]).expect("append");
    j.append(7, &[]).expect("empty payloads are legal");

    let loaded = Journal::load(&path).expect("load");
    assert_eq!(loaded.header, header("demo", 0, 1));
    assert!(!loaded.torn_tail);
    assert_eq!(
        loaded.records,
        vec![
            (3, vec![1.5, -0.25, f64::MIN_POSITIVE]),
            (0, vec![42.0]),
            (7, vec![]),
        ],
        "records replay in append order with bit-exact payloads"
    );
    assert_eq!(loaded.completed_slots(), vec![0, 3, 7]);
}

#[test]
fn payload_bits_survive_exactly() {
    let dir = scratch("bits");
    let path = dir.join("bits.journal");
    // Values with awkward bit patterns: subnormals, -0.0, exact thirds.
    let nasty = [f64::from_bits(1), -0.0, 1.0 / 3.0, 2.5e-308, 1e300];
    let mut j = Journal::create(&path, header("demo", 0, 1)).expect("create");
    j.append(1, &nasty).expect("append");
    let loaded = Journal::load(&path).expect("load");
    for (a, b) in loaded.records[0].1.iter().zip(&nasty) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn torn_tail_is_dropped_and_truncated_on_next_append() {
    let dir = scratch("torn");
    let path = dir.join("torn.journal");
    let mut j = Journal::create(&path, header("demo", 0, 1)).expect("create");
    j.append(2, &[7.0]).expect("append");
    j.append(5, &[8.0]).expect("append");

    // Crash mid-write: half a record, no newline.
    let intact = fs::read_to_string(&path).expect("read");
    fs::write(&path, format!("{intact}r 6 40")).expect("tear");

    let mut reloaded = Journal::load(&path).expect("torn tail is recoverable");
    assert!(reloaded.torn_tail, "the torn fragment must be flagged");
    assert_eq!(reloaded.completed_slots(), vec![2, 5], "fragment dropped");

    // The next append truncates the torn bytes before writing.
    reloaded.append(6, &[9.0]).expect("append after tear");
    let clean = Journal::load(&path).expect("load after recovery");
    assert!(!clean.torn_tail);
    assert_eq!(clean.completed_slots(), vec![2, 5, 6]);
    assert!(!fs::read_to_string(&path).expect("read").contains("r 6 40 "));
}

#[test]
fn newline_terminated_garbage_final_line_is_also_torn() {
    let dir = scratch("torn-nl");
    let path = dir.join("t.journal");
    let mut j = Journal::create(&path, header("demo", 0, 1)).expect("create");
    j.append(1, &[1.0]).expect("append");
    let intact = fs::read_to_string(&path).expect("read");
    fs::write(&path, format!("{intact}r 2 garbage\n")).expect("tear");
    let reloaded = Journal::load(&path).expect("final bad line is torn");
    assert!(reloaded.torn_tail);
    assert_eq!(reloaded.completed_slots(), vec![1]);
}

#[test]
fn chain_mismatch_is_a_hard_error() {
    let dir = scratch("chain");
    let path = dir.join("c.journal");
    let mut j = Journal::create(&path, header("demo", 0, 1)).expect("create");
    j.append(0, &[1.0]).expect("append");
    j.append(1, &[2.0]).expect("append");
    j.append(2, &[3.0]).expect("append");

    // Tamper with the *middle* record's payload: its own chain field no
    // longer re-derives.
    let text = fs::read_to_string(&path).expect("read");
    let tampered = text.replace("r 1 4000000000000000", "r 1 4000000000000001");
    assert_ne!(text, tampered, "fixture must actually change a byte");
    fs::write(&path, tampered).expect("write");
    match Journal::load(&path) {
        Err(JournalError::ChainMismatch { line_number }) => assert_eq!(line_number, 3),
        other => panic!("tampered journal must fail with ChainMismatch, got {other:?}"),
    }

    // Reordering intact records breaks the chain too.
    let mut lines: Vec<&str> = text.lines().collect();
    lines.swap(1, 3);
    fs::write(&path, format!("{}\n", lines.join("\n"))).expect("write");
    match Journal::load(&path) {
        Err(JournalError::ChainMismatch { line_number }) => assert_eq!(line_number, 2),
        other => panic!("reordered journal must fail with ChainMismatch, got {other:?}"),
    }
}

#[test]
fn version_skew_is_a_hard_error() {
    let dir = scratch("skew");
    let path = dir.join("v.journal");
    let mut j = Journal::create(&path, header("demo", 0, 1)).expect("create");
    j.append(0, &[1.0]).expect("append");
    let text = fs::read_to_string(&path).expect("read");
    fs::write(&path, text.replace("mblab1 ", "mblab2 ")).expect("write");
    match Journal::load(&path) {
        Err(JournalError::VersionSkew { found }) => assert_eq!(found, "mblab2"),
        other => panic!("version skew must be fatal, got {other:?}"),
    }
}

#[test]
fn foreign_campaign_header_is_rejected_on_open() {
    let dir = scratch("foreign");
    let path = dir.join("f.journal");
    Journal::create(&path, header("demo", 0, 1)).expect("create");
    match Journal::open_or_create(&path, header("other", 0, 1)) {
        Err(JournalError::HeaderMismatch { field, .. }) => assert_eq!(field, "campaign"),
        other => panic!("campaign mismatch must be fatal, got {other:?}"),
    }
    let mut wrong_shard = header("demo", 0, 1);
    wrong_shard.shard_index = 0;
    wrong_shard.shard_count = 2;
    match Journal::open_or_create(&path, wrong_shard) {
        Err(JournalError::HeaderMismatch { field, .. }) => assert_eq!(field, "shard"),
        other => panic!("shard mismatch must be fatal, got {other:?}"),
    }
}

#[test]
fn append_enforces_slot_ownership_and_uniqueness() {
    let dir = scratch("ownership");
    let path = dir.join("o.journal");
    // Shard 1/2 owns odd slots only.
    let mut j = Journal::create(&path, header("demo", 1, 2)).expect("create");
    j.append(1, &[1.0]).expect("owned slot");
    match j.append(2, &[2.0]) {
        Err(JournalError::ForeignSlot { slot: 2 }) => {}
        other => panic!("unowned slot must be rejected, got {other:?}"),
    }
    match j.append(8, &[2.0]) {
        Err(JournalError::ForeignSlot { slot: 8 }) => {}
        other => panic!("out-of-range slot must be rejected, got {other:?}"),
    }
    match j.append(1, &[3.0]) {
        Err(JournalError::DuplicateSlot { slot: 1 }) => {}
        other => panic!("duplicate slot must be rejected, got {other:?}"),
    }
}

#[test]
fn merge_validates_the_shard_family() {
    let dir = scratch("merge");
    let a = dir.join("a.journal");
    let b = dir.join("b.journal");
    let out = dir.join("m.journal");

    let mut ja = Journal::create(&a, header("demo", 0, 2)).expect("create");
    let mut jb = Journal::create(&b, header("demo", 1, 2)).expect("create");
    for s in [0, 2, 4, 6] {
        ja.append(s, &[s as f64]).expect("append");
    }
    for s in [1, 3, 5] {
        jb.append(s, &[s as f64]).expect("append");
    }

    // Slot 7 missing: incomplete.
    match merge(&out, &[a.clone(), b.clone()]) {
        Err(JournalError::IncompleteMerge { missing }) => assert_eq!(missing, vec![7]),
        other => panic!("incomplete merge must be fatal, got {other:?}"),
    }
    jb.append(7, &[7.0]).expect("append");

    // Wrong family size.
    match merge(&out, std::slice::from_ref(&a)) {
        Err(JournalError::BadShardFamily { .. }) => {}
        other => panic!("1 input for /2 must be fatal, got {other:?}"),
    }
    // Duplicate shard index.
    match merge(&out, &[a.clone(), a.clone()]) {
        Err(JournalError::BadShardFamily { .. }) => {}
        other => panic!("duplicate shard must be fatal, got {other:?}"),
    }

    // A valid family merges into canonical slot order under a 0/1 header.
    let merged = merge(&out, &[b.clone(), a.clone()]).expect("merge (input order free)");
    assert_eq!(merged.header.shard_index, 0);
    assert_eq!(merged.header.shard_count, 1);
    let slots: Vec<usize> = merged.records.iter().map(|(s, _)| *s).collect();
    assert_eq!(slots, (0..8).collect::<Vec<_>>());
    let reloaded = Journal::load(&out).expect("merged journal verifies");
    assert_eq!(reloaded.records, merged.records);
}

#[test]
fn merge_rejects_mixed_campaigns() {
    let dir = scratch("merge-mixed");
    let a = dir.join("a.journal");
    let b = dir.join("b.journal");
    let mut ja = Journal::create(&a, header("demo", 0, 2)).expect("create");
    let mut jb = Journal::create(&b, header("elsewhere", 1, 2)).expect("create");
    for s in [0, 2, 4, 6] {
        ja.append(s, &[0.0]).expect("append");
    }
    for s in [1, 3, 5, 7] {
        jb.append(s, &[0.0]).expect("append");
    }
    match merge(&dir.join("m.journal"), &[a, b]) {
        Err(JournalError::BadShardFamily { detail }) => {
            assert!(detail.contains("elsewhere"), "{detail}");
        }
        other => panic!("mixed campaigns must be fatal, got {other:?}"),
    }
}
