//! Chaos harness for `mb-lab supervise`: seeded SIGKILLs mid-family,
//! a torn shard journal, and duplicate transport re-uploads must all
//! converge to the *pinned* solo digest — crash tolerance is only
//! worth having if the recovered campaign is bit-identical to an
//! undisturbed one.

use mb_lab::campaign::FIG3_QUICK_DIGEST;
use mb_lab::supervise::backoff_delay_ms;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mb-lab-chaos-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The `mb-lab` binary with sharding environment scrubbed.
fn mb_lab() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mb-lab"));
    cmd.env_remove("MB_SHARD")
        .env_remove("MB_MAX_SLOTS")
        .env_remove("MB_SEED")
        .env_remove("MB_SELFTEST_POISON");
    cmd
}

fn assert_success(output: &Output, what: &str) {
    assert!(
        output.status.success(),
        "{what} failed (exit {:?})\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

/// Asserts `merged.journal` under `dir` reproduces the fig3-quick pin,
/// through the CLI digest gate (`--expect` the pin and `--check` the
/// registry, both must agree).
fn assert_merged_matches_pin(dir: &Path) {
    let merged = dir.join("merged.journal");
    let output = mb_lab()
        .arg("digest")
        .arg(&merged)
        .args(["--expect", &format!("{FIG3_QUICK_DIGEST:#x}"), "--check"])
        .output()
        .expect("run mb-lab digest");
    assert_success(&output, "digest --check of the merged journal");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("pinned digest check: ok"),
        "digest gate did not confirm the pin: {stdout}"
    );
}

#[test]
fn chaos_killed_family_converges_to_the_pinned_digest_at_any_thread_count() {
    // The whole acceptance chain, twice: a supervised fig3-quick family
    // with a seeded SIGKILL (plus the supervisor's built-in duplicate
    // segment re-ingest) must converge to the pinned digest bit for
    // bit, at MB_THREADS 1 and 3.
    for threads in ["1", "3"] {
        let dir = scratch(&format!("kill-t{threads}"));
        let output = mb_lab()
            .args(["supervise", "fig3-quick", "--dir"])
            .arg(&dir)
            .args([
                "--shards",
                "2",
                "--chaos-kills",
                "1",
                "--poll-ms",
                "10",
                "--task-delay-ms",
                "100",
            ])
            .env("MB_THREADS", threads)
            .output()
            .expect("run mb-lab supervise");
        assert_success(&output, "supervised chaos run");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("pinned digest check: ok"),
            "MB_THREADS={threads}: supervise must verify the pin itself: {stdout}"
        );
        let report = fs::read_to_string(dir.join("report.json")).expect("report.json written");
        assert!(
            report.contains("\"chaos_kills\": 1"),
            "MB_THREADS={threads}: the seeded kill must actually land: {report}"
        );
        assert!(
            report.contains("\"transport_duplicates\""),
            "report must account the duplicate re-ingest: {report}"
        );
        assert_merged_matches_pin(&dir);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_shard_journal_and_duplicate_reupload_still_converge() {
    let dir = scratch("torn");
    // A clean supervised family first.
    let output = mb_lab()
        .args(["supervise", "fig3-quick", "--dir"])
        .arg(&dir)
        .args(["--shards", "2", "--poll-ms", "10"])
        .env("MB_THREADS", "1")
        .output()
        .expect("run mb-lab supervise");
    assert_success(&output, "clean supervised run");

    // Duplicate transport re-upload through the CLI: splicing shard
    // 0's segment into its already-converged replica must be a pure
    // no-op — every record verified as a duplicate, none appended.
    let replica = dir.join("collect").join("shard0.journal");
    let segment = dir.join("segments").join("shard0.seg");
    let before = fs::read(&replica).expect("replica exists");
    let output = mb_lab()
        .arg("ingest")
        .arg(&replica)
        .arg(&segment)
        .output()
        .expect("run mb-lab ingest");
    assert_success(&output, "duplicate segment re-upload");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("0 appended"),
        "re-upload must append nothing: {stdout}"
    );
    assert_eq!(
        before,
        fs::read(&replica).expect("replica still exists"),
        "duplicate re-upload must leave the replica byte-identical"
    );

    // Tear shard 0's journal mid-record (a crash mid-append) and
    // re-supervise the same family directory: the worker drops the
    // torn tail, re-measures the lost slot, and the family converges
    // to the same pin.
    let journal = dir.join("worker0").join("shard.journal");
    let bytes = fs::read(&journal).expect("worker journal exists");
    assert!(bytes.len() > 10, "journal too short to tear");
    fs::write(&journal, &bytes[..bytes.len() - 10]).expect("tear journal tail");
    let output = mb_lab()
        .args(["supervise", "fig3-quick", "--dir"])
        .arg(&dir)
        .args(["--shards", "2", "--poll-ms", "10"])
        .env("MB_THREADS", "1")
        .output()
        .expect("re-run mb-lab supervise");
    assert_success(&output, "supervised resume over the torn journal");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("pinned digest check: ok"),
        "resumed family must re-verify the pin: {stdout}"
    );
    assert_merged_matches_pin(&dir);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn poison_slot_is_quarantined_and_the_family_still_completes() {
    let dir = scratch("poison");
    let output = mb_lab()
        .args(["supervise", "selftest", "--dir"])
        .arg(&dir)
        .args(["--shards", "2", "--poll-ms", "10", "--poison-threshold", "2"])
        .env("MB_SELFTEST_POISON", "5")
        .output()
        .expect("run mb-lab supervise");
    assert_success(&output, "supervised family with a poison slot");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("1 quarantined: [5]") && stdout.contains("15/16"),
        "slot 5 must be fenced, the other 15 measured: {stdout}"
    );
    assert!(
        stdout.contains("digest withheld"),
        "a degraded completion must not claim a digest: {stdout}"
    );
    // The fence is persisted for any later supervisor over this family.
    let quarantine = fs::read_to_string(dir.join("quarantine.txt")).expect("quarantine.txt");
    assert!(
        quarantine.lines().any(|l| l.starts_with("5 ")),
        "quarantine.txt must record slot 5: {quarantine}"
    );
    let report = fs::read_to_string(dir.join("report.json")).expect("report.json");
    assert!(
        report.contains("\"slot\": 5") && report.contains("\"digest\": null"),
        "report must carry the quarantine record and withhold the digest: {report}"
    );
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The restart schedule is a pure function: same `(seed, shard,
    /// attempt, base, cap)`, same delay — and the delay never exceeds
    /// the cap nor undershoots half the nominal step.
    #[test]
    fn backoff_is_deterministic_and_bounded(
        seed in 0u64..u64::MAX,
        shard in 0u32..64,
        attempt in 0u32..64,
        base_ms in 1u64..1_000,
        cap_ms in 1u64..60_000,
    ) {
        let a = backoff_delay_ms(seed, shard, attempt, base_ms, cap_ms);
        let b = backoff_delay_ms(seed, shard, attempt, base_ms, cap_ms);
        prop_assert_eq!(a, b, "same inputs must give the same delay");
        prop_assert!(a <= cap_ms, "delay {} exceeds cap {}", a, cap_ms);
        let nominal = base_ms.saturating_mul(1u64 << attempt.min(32)).min(cap_ms);
        prop_assert!(
            a >= nominal / 2,
            "delay {} undershoots the jitter floor {}",
            a,
            nominal / 2
        );
    }
}
