//! Shard-equivalence property tests: for any shard count `N in 1..24`
//! (beyond the campaign's 16 tasks, so some shards own *zero* slots —
//! the situation paper-scale partitions make routine), any completion
//! order, any crash-rewind point per shard and any worker count,
//! merging the `N` shard journals yields a stream digest bit-identical
//! to one solo run. This is the sharding contract the ISSUE pins —
//! slot results are pure functions of `(campaign, slot, seed)`, so
//! *how* the partition was executed can never leak into the merged
//! result.

use mb_lab::campaign::{Selftest, SELFTEST_TASKS};
use mb_lab::driver::{digest_journal, run_campaign, run_campaign_with, RunOptions, Shard};
use mb_lab::journal::{merge, Journal};
use mb_simcore::par::with_threads;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Monotone case counter so every proptest case gets a fresh directory
/// even when cases run back to back within one process.
static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch() -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mb-lab-shard-props-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// SplitMix64 — drives the test's own interleaving choices (shard
/// order, rewind depths) deterministically from one proptest input.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Rewinds a journal file to its header plus the first `keep` records —
/// the on-disk state a crash would have left after `keep` completed
/// appends.
fn rewind_to(path: &Path, keep: usize) {
    let text = fs::read_to_string(path).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    let prefix = &lines[..(keep + 1).min(lines.len())];
    fs::write(path, format!("{}\n", prefix.join("\n"))).expect("rewind journal");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_merge_is_bit_identical_to_solo(
        n in 1u32..24,
        choice_seed in 0u64..u64::MAX,
        threads in 1usize..5,
    ) {
        let dir = scratch();
        with_threads(threads, || {
            let solo = run_campaign(&Selftest, &dir.join("solo.journal"), Shard::solo(), 0)
                .expect("solo run");
            let solo_digest = solo.digest.expect("solo runs always finalize");

            let mut rng = choice_seed;
            // Fisher–Yates over the shard indices: completion order is
            // a proptest-chosen permutation, not 0..N.
            let mut order: Vec<u32> = (0..n).collect();
            for i in (1..order.len()).rev() {
                let j = (splitmix(&mut rng) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let paths: Vec<PathBuf> = (0..n)
                .map(|i| dir.join(format!("shard{i}.journal")))
                .collect();

            // Pass 1: every shard runs its partition to completion, in
            // the permuted order. Only a solo shard may finalize.
            for &i in &order {
                let shard = Shard { index: i, count: n };
                let out = run_campaign(&Selftest, &paths[i as usize], shard, 0)
                    .expect("shard run");
                prop_assert_eq!(out.replayed, 0);
                prop_assert_eq!(out.digest.is_some(), n == 1);
            }

            // Pass 2: crash-rewind each journal to an arbitrary prefix
            // and resume; the driver must replay exactly the kept
            // records and re-measure only the lost ones.
            for &i in &order {
                let path = &paths[i as usize];
                let total = Journal::load(path).expect("load shard").records.len();
                let keep = (splitmix(&mut rng) % (total as u64 + 1)) as usize;
                rewind_to(path, keep);
                let shard = Shard { index: i, count: n };
                let out = run_campaign(&Selftest, path, shard, 0).expect("shard resume");
                prop_assert_eq!(out.replayed, keep);
                prop_assert_eq!(out.executed, total - keep);
            }

            let merged = merge(&dir.join("merged.journal"), &paths).expect("merge");
            prop_assert_eq!(
                digest_journal(&merged).expect("digest merged journal"),
                solo_digest,
                "merged {}-way shard digest must equal the solo digest", n
            );
        });
        let _ = fs::remove_dir_all(&dir);
    }
}

/// The deterministic anchor for the empty-shard case the proptest only
/// hits probabilistically: with more shards than tasks, the unpopulated
/// residues must produce valid header-only journals that `merge` and
/// `digest_journal` accept as full members of the shard family.
#[test]
fn shards_owning_zero_slots_leave_header_only_journals_that_merge() {
    let dir = scratch();
    let n = (SELFTEST_TASKS + 8) as u32;
    let solo = run_campaign(&Selftest, &dir.join("solo.journal"), Shard::solo(), 0)
        .expect("solo run");
    let paths: Vec<PathBuf> = (0..n)
        .map(|i| dir.join(format!("shard{i}.journal")))
        .collect();
    for (i, path) in paths.iter().enumerate() {
        let shard = Shard {
            index: i as u32,
            count: n,
        };
        let out = run_campaign(&Selftest, path, shard, 0).expect("shard run");
        let expected = usize::from(i < SELFTEST_TASKS);
        assert_eq!(out.executed, expected, "shard {i}/{n} owns at most one slot");
        let journal = Journal::load(path).expect("every shard journal verifies");
        assert_eq!(journal.records.len(), expected);
        if i >= SELFTEST_TASKS {
            assert!(
                journal.completed_slots().is_empty(),
                "shard {i}/{n} owns no slot and must stay header-only"
            );
        }
    }
    let merged = merge(&dir.join("merged.journal"), &paths).expect("merge with empty shards");
    assert_eq!(
        digest_journal(&merged).expect("digest merged journal"),
        solo.digest.expect("solo runs finalize"),
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Bounded runs (`max_slots`) must walk a shard front to back and
/// converge on the same digest as one unbounded run.
#[test]
fn bounded_runs_converge_to_the_unbounded_digest() {
    let dir = scratch();
    let solo = run_campaign(&Selftest, &dir.join("solo.journal"), Shard::solo(), 0)
        .expect("solo run");
    let path = dir.join("bounded.journal");
    let opts = RunOptions {
        max_slots: Some(5),
        ..RunOptions::default()
    };
    let mut done = 0;
    let mut last_digest = None;
    for round in 0..4 {
        let out = run_campaign_with(&Selftest, &path, &opts).expect("bounded run");
        assert_eq!(out.replayed, done, "round {round} must replay prior rounds");
        assert_eq!(out.executed, (SELFTEST_TASKS - done).min(5));
        assert_eq!(out.remaining, SELFTEST_TASKS - done - out.executed);
        assert_eq!(out.slot_secs.len(), out.executed);
        // Ascending-order guarantee: this round's slots extend the
        // journal's completed prefix contiguously.
        let journal = Journal::load(&path).expect("bounded journal verifies");
        let slots = journal.completed_slots();
        assert_eq!(slots, (0..done + out.executed).collect::<Vec<_>>());
        done += out.executed;
        last_digest = out.digest;
    }
    assert_eq!(done, SELFTEST_TASKS);
    assert_eq!(
        last_digest, solo.digest,
        "the completing bounded run must finalize the solo digest"
    );
    let _ = fs::remove_dir_all(&dir);
}
