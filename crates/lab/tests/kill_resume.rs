//! The kill/resume acceptance test: a real `mb-lab` subprocess driving
//! the Figure 3 quick campaign is `SIGKILL`ed mid-sweep, then resumed
//! by a second invocation. The resumed run must replay the surviving
//! journal records, re-measure only the lost slots, and finalize to the
//! digest pinned in the core test fixtures — at two worker counts.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::thread;
use std::time::Duration;

/// `FIG3_QUICK_DIGEST` from `crates/core/tests/common/digest.rs`,
/// spelled the way the CLI prints it.
const PINNED_FIG3_DIGEST: &str = "0xd0d5f716d0b30356";

/// Total slot count of the fig3-quick campaign (3 panels × 3 core
/// counts).
const FIG3_SLOTS: usize = 9;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mb-lab-kill-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn mb_lab() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mb-lab"))
}

/// Completed (newline-terminated) record lines currently in the file.
fn record_count(path: &Path) -> usize {
    let Ok(text) = fs::read_to_string(path) else {
        return 0;
    };
    let mut n = 0;
    let mut rest = text.as_str();
    while let Some(pos) = rest.find('\n') {
        if rest[..pos].starts_with("r ") {
            n += 1;
        }
        rest = &rest[pos + 1..];
    }
    n
}

fn kill_and_resume(threads: &str) {
    let dir = scratch(&format!("t{threads}"));
    let journal = dir.join("fig3.journal");

    // First run: slowed down so the kill reliably lands mid-sweep.
    let mut child = mb_lab()
        .args(["run", "fig3-quick", "--journal"])
        .arg(&journal)
        .args(["--task-delay-ms", "300"])
        .env("MB_THREADS", threads)
        .spawn()
        .expect("spawn mb-lab");

    // Wait for at least two slots to hit the journal, then SIGKILL —
    // no signal handler runs, so this is a genuine crash.
    let mut waited = Duration::ZERO;
    while record_count(&journal) < 2 {
        assert!(
            waited < Duration::from_secs(60),
            "mb-lab produced fewer than 2 records in 60s"
        );
        assert!(
            child.try_wait().expect("poll child").is_none(),
            "mb-lab exited before the kill (task delay too short?)"
        );
        thread::sleep(Duration::from_millis(10));
        waited += Duration::from_millis(10);
    }
    child.kill().expect("SIGKILL mb-lab");
    child.wait().expect("reap mb-lab");
    let survived = record_count(&journal);
    assert!(
        (2..FIG3_SLOTS).contains(&survived),
        "kill must land mid-sweep: {survived} of {FIG3_SLOTS} records survived"
    );

    // Resume at full speed: replay the survivors, run the rest, and
    // finalize to the pinned digest.
    let output = mb_lab()
        .args(["run", "fig3-quick", "--journal"])
        .arg(&journal)
        .env("MB_THREADS", threads)
        .output()
        .expect("resume mb-lab");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "resume failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stdout.contains(&format!("{survived} replayed")),
        "resume must replay every surviving record\nstdout: {stdout}"
    );
    assert!(
        stdout.contains(&format!("{} executed", FIG3_SLOTS - survived)),
        "resume must re-measure exactly the lost slots\nstdout: {stdout}"
    );
    assert!(
        stdout.contains(&format!("digest {PINNED_FIG3_DIGEST}")),
        "resumed digest must equal the pinned Figure 3 digest\nstdout: {stdout}"
    );

    // `mb-lab digest --check --expect` agrees with the registry pin.
    let check = mb_lab()
        .args(["digest"])
        .arg(&journal)
        .args(["--expect", PINNED_FIG3_DIGEST, "--check"])
        .output()
        .expect("digest check");
    assert!(
        check.status.success(),
        "digest --check failed: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    assert!(String::from_utf8_lossy(&check.stdout).contains("pinned digest check: ok"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_then_resume_reproduces_the_pinned_digest_single_worker() {
    kill_and_resume("1");
}

#[test]
fn sigkill_then_resume_reproduces_the_pinned_digest_three_workers() {
    kill_and_resume("3");
}
