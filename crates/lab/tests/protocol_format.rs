//! Wire-format contract tests for the `mbsrv1` protocol: golden
//! fixtures pinned byte-for-byte (the on-wire renderings are a
//! compatibility surface, exactly like the journal and segment
//! headers), a rejection table where every malformed frame is a
//! *typed* error, and a proptest sweep proving the parsers never
//! panic on arbitrary input.

use mb_lab::protocol::{
    read_frame, write_frame, JobState, JobStatus, ProtocolError, Reply, Request,
    MAX_FRAME_BYTES,
};
use proptest::prelude::*;
use std::io::BufReader;

/// Every request variant next to its pinned canonical rendering.
fn golden_requests() -> Vec<(Request, &'static str)> {
    vec![
        (
            Request::Submit {
                campaign: "fig3-quick".to_string(),
                shards: 2,
            },
            "mbsrv1 submit campaign=fig3-quick shards=2",
        ),
        (Request::Status { job: None }, "mbsrv1 status"),
        (
            Request::Status {
                job: Some("j1".to_string()),
            },
            "mbsrv1 status job=j1",
        ),
        (
            Request::Watch {
                job: "j12".to_string(),
            },
            "mbsrv1 watch job=j12",
        ),
        (
            Request::Cancel {
                job: "j3".to_string(),
            },
            "mbsrv1 cancel job=j3",
        ),
        (
            Request::Fetch {
                job: "j7".to_string(),
            },
            "mbsrv1 fetch job=j7",
        ),
        (Request::Ping, "mbsrv1 ping"),
        (Request::Shutdown, "mbsrv1 shutdown"),
    ]
}

/// Every reply variant next to its pinned canonical rendering. The
/// digest rendering is the workspace-wide `{:#018x}` — the same bytes
/// `mb-lab digest` prints and the test suite pins.
fn golden_replies() -> Vec<(Reply, &'static str)> {
    vec![
        (
            Reply::Submitted {
                job: "j1".to_string(),
                queued: 1,
            },
            "mbsrv1 submitted job=j1 queued=1",
        ),
        (
            Reply::Busy { queued: 8, cap: 8 },
            "mbsrv1 busy queued=8 cap=8",
        ),
        (
            Reply::Err {
                code: 6,
                msg: "bare token 'x' (want key=value)".to_string(),
            },
            "mbsrv1 err code=6 msg=bare token 'x' (want key=value)",
        ),
        (
            Reply::Job(JobStatus {
                job: "j1".to_string(),
                campaign: "fig3-quick".to_string(),
                shards: 2,
                state: JobState::Running,
                done: 3,
                total: 9,
                digest: None,
            }),
            "mbsrv1 job id=j1 campaign=fig3-quick shards=2 state=running done=3 total=9",
        ),
        (
            Reply::Job(JobStatus {
                job: "j1".to_string(),
                campaign: "fig3-quick".to_string(),
                shards: 2,
                state: JobState::Done,
                done: 9,
                total: 9,
                digest: Some(0xd0d5_f716_d0b3_0356),
            }),
            "mbsrv1 job id=j1 campaign=fig3-quick shards=2 state=done done=9 total=9 \
             digest=0xd0d5f716d0b30356",
        ),
        (Reply::End { count: 2 }, "mbsrv1 end count=2"),
        (
            Reply::Progress {
                job: "j1".to_string(),
                done: 3,
                total: 9,
                eta_ms: Some(1200),
            },
            "mbsrv1 progress job=j1 done=3 total=9 eta_ms=1200",
        ),
        (
            Reply::Progress {
                job: "j1".to_string(),
                done: 0,
                total: 9,
                eta_ms: None,
            },
            "mbsrv1 progress job=j1 done=0 total=9",
        ),
        (
            Reply::Done {
                job: "j1".to_string(),
                state: JobState::Done,
                digest: Some(0xd0d5_f716_d0b3_0356),
                checked: true,
                detail: None,
            },
            "mbsrv1 done job=j1 state=done digest=0xd0d5f716d0b30356 checked=true",
        ),
        (
            Reply::Done {
                job: "j2".to_string(),
                state: JobState::Failed,
                digest: None,
                checked: false,
                detail: Some("journal header mismatch".to_string()),
            },
            "mbsrv1 done job=j2 state=failed detail=journal header mismatch",
        ),
        (
            Reply::Segment { lines: 11 },
            "mbsrv1 segment lines=11",
        ),
        (Reply::Pong, "mbsrv1 pong"),
        (
            Reply::Stopping { running: 1 },
            "mbsrv1 stopping running=1",
        ),
    ]
}

#[test]
fn request_renderings_are_pinned_byte_for_byte() {
    for (frame, golden) in golden_requests() {
        assert_eq!(frame.render(), golden, "canonical rendering drifted");
    }
}

#[test]
fn reply_renderings_are_pinned_byte_for_byte() {
    for (frame, golden) in golden_replies() {
        assert_eq!(frame.render(), golden, "canonical rendering drifted");
    }
}

#[test]
fn requests_round_trip_through_their_golden_frames() {
    for (frame, golden) in golden_requests() {
        let parsed = Request::parse(golden)
            .unwrap_or_else(|e| panic!("golden frame '{golden}' rejected: {e}"));
        assert_eq!(parsed, frame, "{golden}");
    }
}

#[test]
fn replies_round_trip_through_their_golden_frames() {
    for (frame, golden) in golden_replies() {
        let parsed = Reply::parse(golden)
            .unwrap_or_else(|e| panic!("golden frame '{golden}' rejected: {e}"));
        assert_eq!(parsed, frame, "{golden}");
    }
}

/// The rejection table: every row must be a *typed* error, and the
/// version check must run before any field validation (a frame from a
/// future protocol is diagnosed as skew, not as whatever field happens
/// to look wrong first).
#[test]
fn malformed_frames_are_typed_rejections() {
    let version_skew = [
        "mbsrv2 ping",
        "mbsrv0 submit campaign=fig3-quick shards=2",
        "MBSRV1 ping",
        "",
        "garbage",
    ];
    for line in version_skew {
        assert!(
            matches!(Request::parse(line), Err(ProtocolError::VersionSkew { .. })),
            "'{line}' must be version skew, got {:?}",
            Request::parse(line)
        );
    }

    let bad_frames = [
        // verb-level
        "mbsrv1",
        "mbsrv1 frobnicate",
        // field-shape violations
        "mbsrv1 submit fig3-quick",
        "mbsrv1 submit campaign=fig3-quick",
        "mbsrv1 submit campaign=fig3-quick shards=2 extra=1",
        "mbsrv1 submit campaign=fig3-quick campaign=fig3-quick shards=2",
        "mbsrv1 submit campaign= shards=2",
        "mbsrv1 submit CAMPAIGN=fig3-quick shards=2",
        // value violations
        "mbsrv1 submit campaign=Fig3 shards=2",
        "mbsrv1 submit campaign=fig3-quick shards=0",
        "mbsrv1 submit campaign=fig3-quick shards=4097",
        "mbsrv1 submit campaign=fig3-quick shards=two",
        "mbsrv1 watch job=j1/../etc",
        "mbsrv1 ping trailing=field",
    ];
    for line in bad_frames {
        assert!(
            matches!(Request::parse(line), Err(ProtocolError::BadFrame { .. })),
            "'{line}' must be a bad frame, got {:?}",
            Request::parse(line)
        );
    }

    let bad_replies = [
        "mbsrv1 submitted job=j1",
        "mbsrv1 err code=0 msg=zero is success",
        "mbsrv1 err code=900 msg=not a byte",
        "mbsrv1 job id=j1 campaign=fig3-quick shards=2 state=paused done=0 total=9",
        "mbsrv1 done job=j1 state=done digest=d0d5f716d0b30356 checked=true",
        "mbsrv1 done job=j1 state=done digest=0xnothex checked=true",
        "mbsrv1 done job=j1 state=done checked=maybe",
        "mbsrv1 segment lines=-3",
    ];
    for line in bad_replies {
        assert!(
            matches!(Reply::parse(line), Err(ProtocolError::BadFrame { .. })),
            "'{line}' must be a bad frame, got {:?}",
            Reply::parse(line)
        );
    }
}

#[test]
fn oversized_truncated_and_binary_streams_are_typed() {
    // Past the cap without a terminator: oversized, not truncated.
    let long = vec![b'a'; MAX_FRAME_BYTES + 1];
    let mut r = BufReader::new(&long[..]);
    assert!(matches!(
        read_frame(&mut r),
        Err(ProtocolError::Oversized { limit }) if limit == MAX_FRAME_BYTES
    ));

    // Exactly at the cap *with* terminator: fine.
    let mut exact = vec![b'a'; MAX_FRAME_BYTES - 1];
    exact.push(b'\n');
    let mut r = BufReader::new(&exact[..]);
    let line = read_frame(&mut r).expect("cap-sized frame is legal");
    assert_eq!(line.map(|l| l.len()), Some(MAX_FRAME_BYTES - 1));

    // EOF mid-line: truncated, with the byte count preserved.
    let mut r = BufReader::new(&b"mbsrv1 pin"[..]);
    assert!(matches!(
        read_frame(&mut r),
        Err(ProtocolError::Truncated { got: 10 })
    ));

    // Clean EOF between frames is not an error.
    let mut r = BufReader::new(&b""[..]);
    assert!(matches!(read_frame(&mut r), Ok(None)));

    // Non-UTF-8 bytes are a typed bad frame, never a panic.
    let mut r = BufReader::new(&[0xff, 0xfe, b'\n'][..]);
    assert!(matches!(
        read_frame(&mut r),
        Err(ProtocolError::BadFrame { .. })
    ));
}

#[test]
fn write_then_read_is_identity_for_every_golden_frame() {
    let mut wire: Vec<u8> = Vec::new();
    for (_, golden) in golden_requests() {
        write_frame(&mut wire, golden).expect("write to memory");
    }
    for (_, golden) in golden_replies() {
        write_frame(&mut wire, golden).expect("write to memory");
    }
    let mut r = BufReader::new(&wire[..]);
    let mut seen = Vec::new();
    while let Some(line) = read_frame(&mut r).expect("read back") {
        seen.push(line);
    }
    let expected: Vec<String> = golden_requests()
        .iter()
        .map(|(_, g)| (*g).to_string())
        .chain(golden_replies().iter().map(|(_, g)| (*g).to_string()))
        .collect();
    assert_eq!(seen, expected, "the wire must carry frames verbatim");
}

#[test]
fn exit_codes_follow_the_workspace_contract() {
    use mb_simcore::error::exit_code;
    let skew = ProtocolError::VersionSkew {
        found: "mbsrv2".to_string(),
    };
    assert_eq!(skew.exit_code(), exit_code::PROTOCOL);
    let io = ProtocolError::Io(std::io::Error::new(
        std::io::ErrorKind::ConnectionRefused,
        "refused",
    ));
    assert_eq!(io.exit_code(), exit_code::UNAVAILABLE);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text through both parsers: any outcome is fine,
    /// panicking is not. Bytes are lossily decoded so multi-byte
    /// replacement chars exercise the slicing paths too.
    #[test]
    fn parsers_never_panic_on_arbitrary_text(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = Request::parse(&line);
        let _ = Reply::parse(&line);
    }

    /// A canonical frame with one byte flipped still must never panic,
    /// and must either parse or fail typed — this walks the boundary
    /// cases (separators, the version token, digit edges) much harder
    /// than fully random text does.
    #[test]
    fn mutated_golden_frames_never_panic(idx in 0usize..13, pos in 0usize..60, byte in any::<u8>()) {
        let (_, golden) = &golden_replies()[idx];
        let mut bytes = golden.as_bytes().to_vec();
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        if let Ok(line) = String::from_utf8(bytes) {
            let _ = Reply::parse(&line);
            let _ = Request::parse(&line);
        }
    }

    /// Arbitrary bytes through the framed reader: reads a typed result
    /// out of any stream prefix without panicking.
    #[test]
    fn read_frame_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut r = BufReader::new(&bytes[..]);
        while let Ok(Some(_)) = read_frame(&mut r) {}
    }
}
