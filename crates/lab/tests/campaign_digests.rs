//! Pins the campaign registry to the core test fixtures and proves the
//! whole persistence pipeline — journal → checkpoint replay → shard
//! merge — reproduces the pinned figure digests bit for bit at more
//! than one worker count. This is the ISSUE's acceptance gate run
//! in-process; `kill_resume.rs` repeats it across a real `SIGKILL`.

// The core crate's test fixture, included by path so the two pinned
// constant sets can never drift silently.
#[path = "../../core/tests/common/digest.rs"]
#[allow(dead_code)]
mod fixture;

use mb_lab::campaign::{self, find, registry};
use mb_lab::driver::{digest_journal, run_campaign, Shard};
use mb_lab::journal::{merge, Journal};
use mb_simcore::par::with_threads;
use std::fs;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mb-lab-digests-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn registry_pins_mirror_the_core_fixtures() {
    assert_eq!(campaign::FIG3_QUICK_DIGEST, fixture::FIG3_QUICK_DIGEST);
    assert_eq!(
        campaign::FIG3_FAULTED_QUICK_DIGEST,
        fixture::FIG3_FAULTED_QUICK_DIGEST
    );
    assert_eq!(campaign::FIG5_QUICK_DIGEST, fixture::FIG5_QUICK_DIGEST);
    assert_eq!(campaign::FIG7_QUICK_DIGEST, fixture::FIG7_QUICK_DIGEST);
    assert_eq!(campaign::TABLE2_QUICK_DIGEST, fixture::TABLE2_QUICK_DIGEST);
    assert_eq!(campaign::FIG3_PAPER_DIGEST, fixture::FIG3_PAPER_DIGEST);
    assert_eq!(
        campaign::FIG3_FAULTED_PAPER_DIGEST,
        fixture::FIG3_FAULTED_PAPER_DIGEST
    );
    assert_eq!(campaign::FIG5_PAPER_DIGEST, fixture::FIG5_PAPER_DIGEST);
    assert_eq!(campaign::FIG7_PAPER_DIGEST, fixture::FIG7_PAPER_DIGEST);
    assert_eq!(campaign::TABLE2_PAPER_DIGEST, fixture::TABLE2_PAPER_DIGEST);
    assert_eq!(campaign::TOP500_TRENDS_DIGEST, fixture::TOP500_TRENDS_DIGEST);
}

#[test]
fn registry_digest_fold_matches_the_fixture_fold() {
    let stream = [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1e308];
    assert_eq!(campaign::digest(stream), fixture::digest(stream));
}

/// The top500 campaign had no core fixture before `mb-lab`; its pin is
/// anchored here against a direct (journal-free) trend fit instead.
#[test]
fn top500_pin_matches_a_direct_trend_fit() {
    use montblanc::top500;
    let stream: Vec<f64> = top500::all_series()
        .into_iter()
        .flat_map(|s| top500::trend_stream(&top500::fit_trend(&top500::history(), s)))
        .collect();
    assert_eq!(campaign::digest(stream), campaign::TOP500_TRENDS_DIGEST);
}

/// Runs `name` solo through the full journal pipeline and checks the
/// finalized digest against the registry pin.
fn solo_digest(dir: &Path, name: &str, tag: &str) -> u64 {
    let campaign = find(name).expect("registered campaign");
    let path = dir.join(format!("{name}-{tag}.journal"));
    let out = run_campaign(campaign.as_ref(), &path, Shard::solo(), 0).expect("solo run");
    assert_eq!(out.replayed, 0);
    out.digest.expect("solo runs finalize")
}

#[test]
fn fig3_solo_run_reproduces_the_pinned_digest_at_two_thread_counts() {
    let dir = scratch("fig3-solo");
    for threads in [1usize, 3] {
        let d = with_threads(threads, || {
            solo_digest(&dir, "fig3-quick", &format!("t{threads}"))
        });
        assert_eq!(
            d,
            fixture::FIG3_QUICK_DIGEST,
            "fig3-quick solo digest drifted at {threads} worker(s)"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fig3_three_way_shard_merge_reproduces_the_pinned_digest() {
    let dir = scratch("fig3-shards");
    for threads in [1usize, 3] {
        let digest = with_threads(threads, || {
            let campaign = find("fig3-quick").expect("registered campaign");
            let paths: Vec<PathBuf> = (0..3)
                .map(|i| dir.join(format!("t{threads}-shard{i}.journal")))
                .collect();
            for (i, path) in paths.iter().enumerate() {
                let shard = Shard {
                    index: i as u32,
                    count: 3,
                };
                let out = run_campaign(campaign.as_ref(), path, shard, 0).expect("shard run");
                assert!(out.digest.is_none(), "partial shards must not finalize");
            }
            let merged =
                merge(&dir.join(format!("t{threads}-merged.journal")), &paths).expect("merge");
            digest_journal(&merged).expect("digest merged journal")
        });
        assert_eq!(
            digest,
            fixture::FIG3_QUICK_DIGEST,
            "3-way shard merge digest drifted at {threads} worker(s)"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fig3_resume_after_partial_run_reproduces_the_pinned_digest() {
    let dir = scratch("fig3-resume");
    let campaign = find("fig3-quick").expect("registered campaign");
    for threads in [1usize, 3] {
        let path = dir.join(format!("t{threads}.journal"));
        let (replayed, digest) = with_threads(threads, || {
            run_campaign(campaign.as_ref(), &path, Shard::solo(), 0).expect("first run");
            // Crash-rewind: keep the header plus the first 4 records.
            let text = fs::read_to_string(&path).expect("read journal");
            let prefix: Vec<&str> = text.lines().take(5).collect();
            fs::write(&path, format!("{}\n", prefix.join("\n"))).expect("rewind journal");
            let out =
                run_campaign(campaign.as_ref(), &path, Shard::solo(), 0).expect("resumed run");
            (out.replayed, out.digest.expect("solo runs finalize"))
        });
        assert_eq!(replayed, 4, "resume must replay exactly the surviving records");
        assert_eq!(
            digest,
            fixture::FIG3_QUICK_DIGEST,
            "resumed fig3-quick digest drifted at {threads} worker(s)"
        );
        let reloaded = Journal::load(&path).expect("journal verifies after resume");
        assert_eq!(reloaded.completed_slots().len(), 9);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_pinned_campaign_reproduces_its_digest_through_the_journal() {
    // fig5/fig7/table2 paper grids cost tens of seconds in a debug
    // build; their pins are guarded monolithically by the core test
    // suite, and ci.sh drives fig5-paper through the sharded journal
    // pipeline in release. The cheap paper grids stay in this loop.
    let debug_heavy = ["fig5-paper", "fig7-paper", "table2-paper"];
    let dir = scratch("all-campaigns");
    for campaign in registry() {
        let Some(pinned) = campaign.pinned_digest() else {
            continue;
        };
        if debug_heavy.contains(&campaign.name()) {
            continue;
        }
        let path = dir.join(format!("{}.journal", campaign.name()));
        let out = run_campaign(campaign.as_ref(), &path, Shard::solo(), 0).expect("solo run");
        assert_eq!(
            out.digest,
            Some(pinned),
            "campaign '{}' drifted from its pinned digest",
            campaign.name()
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn paper_campaigns_are_registered_with_distinct_seeds_and_pins() {
    for figure in ["fig3", "fig3-faulted", "fig5", "fig7", "table2"] {
        let quick = find(&format!("{figure}-quick")).expect("quick campaign registered");
        let paper = find(&format!("{figure}-paper")).expect("paper campaign registered");
        assert_ne!(
            quick.seed(),
            paper.seed(),
            "{figure}: a paper shard must never resume into a quick journal"
        );
        assert_ne!(
            quick.pinned_digest(),
            paper.pinned_digest(),
            "{figure}: quick and paper grids pin different streams"
        );
        assert_eq!(quick.payload_width(), paper.payload_width());
        assert!(
            paper.task_labels().len() >= quick.task_labels().len(),
            "{figure}: the paper grid is the superset workload"
        );
    }
}

/// A journal record whose payload is narrower than the campaign's slot
/// width (here: a faulted record missing its resilience counters) must
/// surface as [`JournalError::BadPayload`] from both the driver and the
/// digest path — never as a `copy_from_slice` panic inside `finalize`.
#[test]
fn short_payload_is_a_journal_error_not_a_finalize_panic() {
    use mb_lab::driver::expected_header;
    use mb_lab::journal::JournalError;

    let dir = scratch("short-payload");
    let campaign = find("fig3-faulted-quick").expect("registered campaign");
    let path = dir.join("short.journal");
    let mut journal =
        Journal::create(&path, expected_header(campaign.as_ref(), Shard::solo()))
            .expect("create journal");
    // Two of the six faulted counters — the shape a truncated or
    // hand-edited record would present.
    journal.append(0, &[1.0, 2.0]).expect("journal append");
    drop(journal);

    let run = run_campaign(campaign.as_ref(), &path, Shard::solo(), 0);
    assert!(
        matches!(
            run,
            Err(JournalError::BadPayload {
                slot: 0,
                got: 2,
                expected: 6
            })
        ),
        "driver accepted a short payload: {run:?}"
    );

    let loaded = Journal::load(&path).expect("journal itself verifies");
    let digest = digest_journal(&loaded);
    assert!(
        matches!(digest, Err(JournalError::BadPayload { slot: 0, .. })),
        "digest path accepted a short payload: {digest:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}
