//! Concurrency soak for `mb-lab serve`: many clients against one
//! server must not perturb determinism — every concurrently-submitted
//! `fig3-quick` family converges to the *pinned* solo digest bit for
//! bit, fetched segments are byte-identical across jobs, the bounded
//! queue answers overflow with a typed `busy` (never a hang, never a
//! dropped job), and a malformed frame hurts only its own connection.

use mb_lab::campaign::FIG3_QUICK_DIGEST;
use mb_lab::client::{self, ClientError};
use mb_lab::protocol::JobState;
use mb_lab::serve::{self, ServePolicy};
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mb-lab-soak-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Path of the worker binary the in-process server forks for shards.
fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_mb-lab"))
}

/// Starts an in-process server on an OS-assigned port and waits for
/// its address file; returns `(addr, server thread)`. The thread exits
/// when a client sends `shutdown`.
fn start_server(dir: &Path, policy: ServePolicy) -> (String, thread::JoinHandle<()>) {
    let dir_owned = dir.to_path_buf();
    let handle = thread::spawn(move || {
        serve::serve(&dir_owned, &worker_exe(), &policy).expect("server runs until shutdown");
    });
    let addr_file = serve::addr_file(dir);
    for _ in 0..400 {
        if let Ok(addr) = fs::read_to_string(&addr_file) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                return (addr, handle);
            }
        }
        thread::sleep(Duration::from_millis(25));
    }
    panic!("server did not publish {} in time", addr_file.display());
}

#[test]
fn concurrent_submissions_converge_to_the_pinned_digest_bit_for_bit() {
    let dir = scratch("concurrent");
    let (addr, server) = start_server(&dir, ServePolicy::default());

    // Two clients race their submissions and watches end to end.
    let fetched: Vec<(String, Vec<u8>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let addr = addr.clone();
                let dir = dir.clone();
                scope.spawn(move || {
                    let (job, _queued) =
                        client::submit(&addr, "fig3-quick", 2).expect("submit over the socket");
                    let outcome = client::watch(&addr, &job, |_, _, _| {})
                        .expect("watch to the terminal frame");
                    assert_eq!(outcome.state, JobState::Done, "{job}: {:?}", outcome.detail);
                    assert_eq!(
                        outcome.digest,
                        Some(FIG3_QUICK_DIGEST),
                        "{job} diverged from the solo pin"
                    );
                    assert!(outcome.checked, "{job} digest must be registry-checked");
                    let seg = dir.join(format!("client{i}.seg"));
                    let records =
                        client::fetch(&addr, &job, &seg).expect("fetch the merged segment");
                    assert!(records > 0, "{job} fetched an empty segment");
                    (job, fs::read(&seg).expect("read fetched segment"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    // Distinct jobs, identical results: the fetched segments must be
    // byte-identical — same campaign, same slots, same chain.
    assert_ne!(fetched[0].0, fetched[1].0, "every submission gets its own job");
    assert_eq!(
        fetched[0].1, fetched[1].1,
        "concurrent families must produce byte-identical segments"
    );

    client::shutdown(&addr).expect("shutdown");
    server.join().expect("server thread");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn queue_overflow_is_a_typed_busy_reply() {
    let dir = scratch("busy");
    let mut policy = ServePolicy {
        queue_cap: 1,
        workers: 1,
        ..ServePolicy::default()
    };
    // Slow slots so the first job pins the only worker while the
    // overflow scenario is staged.
    policy.supervise.task_delay_ms = 120;
    let (addr, server) = start_server(&dir, policy);

    let (first, _) = client::submit(&addr, "selftest", 1).expect("first submit");
    // Wait until the worker has popped it: the queue must be empty
    // before the next submission or the cap would trip early.
    for _ in 0..400 {
        let snapshot = client::status(&addr, Some(&first)).expect("status")[0].clone();
        if snapshot.state == JobState::Running {
            break;
        }
        thread::sleep(Duration::from_millis(25));
    }

    let (_second, queued) = client::submit(&addr, "selftest", 1).expect("second submit fills the queue");
    assert_eq!(queued, 1, "second job must sit in the queue");

    // The queue is at its bound: the third submission must be refused
    // with the typed reply carrying the exact depth and cap.
    match client::submit(&addr, "selftest", 1) {
        Err(ClientError::Busy { queued, cap }) => {
            assert_eq!((queued, cap), (1, 1));
        }
        other => panic!("expected a typed busy reply, got {other:?}"),
    }

    // The same overflow through a raw socket pins the golden frame.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    raw.write_all(b"mbsrv1 submit campaign=selftest shards=1\n")
        .expect("raw submit");
    let mut line = String::new();
    BufReader::new(&raw)
        .read_line(&mut line)
        .expect("raw busy reply");
    assert_eq!(line, "mbsrv1 busy queued=1 cap=1\n", "golden busy frame drifted");

    // Backpressure is load shedding, not damage: the queued jobs still
    // drain to completion afterwards.
    let outcome = client::watch(&addr, &first, |_, _, _| {}).expect("watch first");
    assert_eq!(outcome.state, JobState::Done);

    client::shutdown(&addr).expect("shutdown");
    server.join().expect("server thread");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn malformed_frames_hurt_only_their_own_connection() {
    let dir = scratch("malformed");
    let (addr, server) = start_server(&dir, ServePolicy::default());

    let attacks: [&[u8]; 4] = [
        b"mbsrv1 submit fig3-quick\n",                  // bare token
        b"mbsrv0 ping\n",                               // version skew
        b"mbsrv1 submit campaign=../../etc shards=2\n", // illegal name
        b"not even close\n",
    ];
    for attack in attacks {
        let mut raw = TcpStream::connect(&addr).expect("raw connect");
        raw.write_all(attack).expect("send malformed frame");
        let mut line = String::new();
        BufReader::new(&raw)
            .read_line(&mut line)
            .expect("read err reply");
        assert!(
            line.starts_with("mbsrv1 err code=6 msg="),
            "malformed frame must answer with a typed protocol error, got: {line}"
        );
        // The server survived and still serves the next client.
        client::ping(&addr).expect("server must stay alive after a malformed frame");
    }

    // An oversized frame (no terminator within the cap) is rejected
    // without buffering the whole flood.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    let flood = vec![b'a'; 8192];
    raw.write_all(&flood).expect("send oversized frame");
    let mut line = String::new();
    BufReader::new(&raw).read_line(&mut line).expect("read reply");
    assert!(
        line.starts_with("mbsrv1 err code=6"),
        "oversized frame must be a typed rejection, got: {line}"
    );
    client::ping(&addr).expect("server must stay alive after an oversized frame");

    client::shutdown(&addr).expect("shutdown");
    server.join().expect("server thread");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cancel_is_effective_for_queued_jobs_and_idempotent() {
    let dir = scratch("cancel");
    let mut policy = ServePolicy {
        queue_cap: 4,
        workers: 1,
        ..ServePolicy::default()
    };
    policy.supervise.task_delay_ms = 120;
    let (addr, server) = start_server(&dir, policy);

    let (running, _) = client::submit(&addr, "selftest", 1).expect("submit running job");
    for _ in 0..400 {
        if client::status(&addr, Some(&running)).expect("status")[0].state == JobState::Running {
            break;
        }
        thread::sleep(Duration::from_millis(25));
    }
    let (queued, _) = client::submit(&addr, "selftest", 1).expect("submit queued job");

    // Cancelling a queued job flips it immediately and permanently.
    let snapshot = client::cancel(&addr, &queued).expect("cancel queued job");
    assert_eq!(snapshot.state, JobState::Cancelled);
    let again = client::cancel(&addr, &queued).expect("cancel is idempotent");
    assert_eq!(again.state, JobState::Cancelled);

    // Cancelling the running job is cooperative: watch observes the
    // terminal flip and the journals stay on disk for a later resume.
    client::cancel(&addr, &running).expect("cancel running job");
    let outcome = client::watch(&addr, &running, |_, _, _| {}).expect("watch cancelled job");
    assert_eq!(outcome.state, JobState::Cancelled, "{:?}", outcome.detail);

    client::shutdown(&addr).expect("shutdown");
    server.join().expect("server thread");
    let _ = fs::remove_dir_all(&dir);
}
