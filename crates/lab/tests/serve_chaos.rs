//! Crash harness for `mb-lab serve`: the server process (and its
//! whole worker process group) is SIGKILLed mid-campaign, restarted on
//! the same data dir, and must resume the in-flight family to the
//! *pinned* solo digest. A torn or corrupted shard journal must
//! surface as a typed per-job failure report — never a server crash —
//! and a second server on a live data dir must be refused with the
//! typed ownership error (exit 5).

use mb_lab::campaign::FIG3_QUICK_DIGEST;
use mb_lab::client;
use mb_lab::protocol::JobState;
use std::fs;
use std::os::unix::process::CommandExt;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::thread;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mb-lab-schaos-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Spawns `mb-lab serve` as the leader of its own process group, so a
/// later `kill -9 -pid` takes the shard workers down with it — exactly
/// the blast radius of a host reboot. Killing only the server would
/// leave live workers owning journal locks, which the restarted server
/// must (and does) refuse to share; that refusal is a different test.
fn spawn_server(dir: &Path, task_delay_ms: u64) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mb-lab"));
    cmd.arg("serve")
        .arg("--dir")
        .arg(dir)
        .args(["--task-delay-ms", &task_delay_ms.to_string()])
        .env_remove("MB_SHARD")
        .env_remove("MB_MAX_SLOTS")
        .env_remove("MB_SEED")
        .env_remove("MB_SELFTEST_POISON")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .process_group(0);
    cmd.spawn().expect("spawn mb-lab serve")
}

fn wait_for_addr(dir: &Path) -> String {
    let addr_file = mb_lab::serve::addr_file(dir);
    for _ in 0..400 {
        if let Ok(addr) = fs::read_to_string(&addr_file) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() && client::ping(&addr).is_ok() {
                return addr;
            }
        }
        thread::sleep(Duration::from_millis(25));
    }
    panic!("server did not publish {} in time", addr_file.display());
}

/// SIGKILLs the server's whole process group and reaps the leader.
fn kill_group(server: &mut Child) {
    let pgid = server.id();
    // procps `kill` needs `--` before a negative (group) target; without
    // it the signal is silently dropped with exit 0.
    let status = Command::new("kill")
        .args(["-9", "--", &format!("-{pgid}")])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -9 -{pgid} failed");
    let _ = server.wait();
    // The addr file of the dead server must not mislead the next poll.
    thread::sleep(Duration::from_millis(50));
}

/// Waits until `job` has journaled at least `min_done` slots.
fn wait_for_progress(addr: &str, job: &str, min_done: usize) {
    for _ in 0..600 {
        let snapshot = client::status(addr, Some(job)).expect("status")[0].clone();
        if snapshot.done >= min_done {
            return;
        }
        thread::sleep(Duration::from_millis(25));
    }
    panic!("{job} never reached {min_done} journaled slot(s)");
}

#[test]
fn sigkill_mid_campaign_then_restart_resumes_to_the_pinned_digest() {
    let dir = scratch("resume");
    let data = dir.join("data");

    // Slow slots, so the kill lands mid-family with journaled progress.
    let mut server = spawn_server(&data, 150);
    let addr = wait_for_addr(&data);
    let (job, _) = client::submit(&addr, "fig3-quick", 2).expect("submit");
    wait_for_progress(&addr, &job, 2);
    kill_group(&mut server);

    // Same dir, fresh server: the stale serve/journal locks belong to
    // dead processes and are stolen, the unfinished job is re-enqueued,
    // and the family resumes from its journals instead of starting over.
    let mut server = spawn_server(&data, 0);
    let addr = wait_for_addr(&data);
    let outcome = client::watch(&addr, &job, |_, _, _| {}).expect("watch resumed job");
    assert_eq!(outcome.state, JobState::Done, "{:?}", outcome.detail);
    assert_eq!(
        outcome.digest,
        Some(FIG3_QUICK_DIGEST),
        "resumed family diverged from the solo pin"
    );
    assert!(outcome.checked, "resumed digest must be registry-checked");

    // The digest gate agrees through the CLI as well: fetch the merged
    // segment and check it against the registry pin end to end.
    let seg = dir.join("resumed.seg");
    client::fetch(&addr, &job, &seg).expect("fetch resumed segment");
    client::shutdown(&addr).expect("shutdown");
    let _ = server.wait();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_is_a_typed_job_failure_not_a_server_crash() {
    let dir = scratch("corrupt");
    let data = dir.join("data");

    let mut server = spawn_server(&data, 150);
    let addr = wait_for_addr(&data);
    let (poisoned, _) = client::submit(&addr, "fig3-quick", 2).expect("submit");
    wait_for_progress(&addr, &poisoned, 4);
    kill_group(&mut server);

    // Swap the first two records of one shard journal: the chain no
    // longer re-derives at a *non-final* line, which is tampering, not
    // a torn tail — the resumed worker must die with the typed
    // corruption exit, and the server must convert that into a per-job
    // failure report, not its own death.
    let mut corrupted = false;
    for worker in 0.. {
        let journal = data
            .join("jobs")
            .join(&poisoned)
            .join(format!("worker{worker}"))
            .join("shard.journal");
        if !journal.exists() {
            break;
        }
        let text = fs::read_to_string(&journal).expect("read shard journal");
        let mut lines: Vec<&str> = text.lines().collect();
        let records: Vec<usize> = (0..lines.len())
            .filter(|&i| lines[i].starts_with("r "))
            .collect();
        if records.len() >= 2 {
            lines.swap(records[0], records[1]);
            fs::write(&journal, format!("{}\n", lines.join("\n")))
                .expect("corrupt shard journal");
            corrupted = true;
            break;
        }
    }
    assert!(corrupted, "no shard journal with two records to corrupt");

    let mut server = spawn_server(&data, 0);
    let addr = wait_for_addr(&data);

    // The poisoned job fails with a typed postmortem...
    let outcome = client::watch(&addr, &poisoned, |_, _, _| {}).expect("watch poisoned job");
    assert_eq!(
        outcome.state,
        JobState::Failed,
        "a corrupt journal must fail the job, got {outcome:?}"
    );
    assert!(outcome.digest.is_none(), "no digest from a corrupt family");
    assert!(
        outcome.detail.is_some(),
        "the failure report must carry a postmortem line"
    );

    // ...while the server keeps serving: a healthy family submitted
    // afterwards still converges to the pin on the same instance.
    let (healthy, _) = client::submit(&addr, "fig3-quick", 2).expect("submit healthy job");
    let outcome = client::watch(&addr, &healthy, |_, _, _| {}).expect("watch healthy job");
    assert_eq!(outcome.state, JobState::Done, "{:?}", outcome.detail);
    assert_eq!(outcome.digest, Some(FIG3_QUICK_DIGEST));

    client::shutdown(&addr).expect("shutdown");
    let _ = server.wait();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn second_server_on_a_live_data_dir_is_refused_with_exit_5() {
    let dir = scratch("owned");
    let data = dir.join("data");

    let mut first = spawn_server(&data, 0);
    let addr = wait_for_addr(&data);

    // The second server must refuse the dir with the typed ownership
    // error instead of binding a socket and racing the first one.
    let output = Command::new(env!("CARGO_BIN_EXE_mb-lab"))
        .arg("serve")
        .arg("--dir")
        .arg(&data)
        .output()
        .expect("run second server");
    assert_eq!(
        output.status.code(),
        Some(5),
        "a live data dir must be refused with exit 5\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("already owned by live process"),
        "ownership diagnostic missing: {stderr}"
    );

    // The first server is unharmed by the refused takeover attempt.
    client::ping(&addr).expect("first server still alive");
    client::shutdown(&addr).expect("shutdown");
    let _ = first.wait();
    let _ = fs::remove_dir_all(&dir);
}
