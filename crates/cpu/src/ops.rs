//! The architecture-neutral operation vocabulary and the `Exec` sink.
//!
//! Kernels in `mb-kernels` are ordinary Rust functions generic over an
//! [`Exec`] parameter. They compute their real numerical result *and*
//! report every abstract operation to the sink. The sink decides what the
//! report costs:
//!
//! * [`NullExec`] — nothing (native-speed runs, used by Criterion);
//! * [`CountingExec`] — tallies [`OpCounts`] (workload characterisation);
//! * [`crate::exec_model::ModelExec`] — charges cycles on a machine model.

use serde::{Deserialize, Serialize};

/// Floating-point operation kinds, costed separately because their
/// throughputs differ by an order of magnitude on both target cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlopKind {
    /// Addition or subtraction.
    Add,
    /// Multiplication.
    Mul,
    /// Fused (or chained) multiply-add — counts as **two** flops, per
    /// LINPACK convention.
    Fma,
    /// Division.
    Div,
    /// Square root.
    Sqrt,
    /// Comparison / min / max / abs.
    Cmp,
}

impl FlopKind {
    /// How many flops this operation contributes to FLOPS accounting
    /// (per lane).
    pub fn flops(self) -> u64 {
        match self {
            FlopKind::Fma => 2,
            _ => 1,
        }
    }
}

/// Floating-point precision. The distinction drives the paper's key
/// asymmetry: the Cortex-A9's NEON unit is **single precision only**
/// (Section II.B), so double-precision work cannot be vectorised on ARM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit IEEE-754.
    F32,
    /// 64-bit IEEE-754.
    F64,
}

impl Precision {
    /// Element width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }
}

/// The sink kernels report their operations to.
///
/// `lanes` on [`Exec::flop`] expresses *intended* SIMD width: a kernel
/// that processes 4 elements per iteration reports `lanes = 4` once
/// rather than 4 scalar flops. Whether the hardware can actually execute
/// them in parallel is the model's decision, not the kernel's.
pub trait Exec {
    /// Reports `lanes` parallel floating-point operations of `kind`.
    fn flop(&mut self, kind: FlopKind, prec: Precision, lanes: u32);

    /// Reports `n` simple integer/logic operations.
    fn int_ops(&mut self, n: u64);

    /// Reports a load of `bytes` at (virtual) address `addr`.
    fn load(&mut self, addr: u64, bytes: u32);

    /// Reports a store of `bytes` at (virtual) address `addr`.
    fn store(&mut self, addr: u64, bytes: u32);

    /// Reports a conditional branch; `predictable` distinguishes
    /// loop-style branches from data-dependent ones.
    fn branch(&mut self, predictable: bool);

    /// Reports `n` identical flop instructions in one call — equivalent
    /// to calling [`Exec::flop`] `n` times. Sinks whose accounting is
    /// closed-form override this in O(1); kernels should prefer it for
    /// loops that exist only to report uniform arithmetic.
    fn flop_run(&mut self, kind: FlopKind, prec: Precision, lanes: u32, n: u64) {
        for _ in 0..n {
            self.flop(kind, prec, lanes);
        }
    }

    /// Reports `n` branches of equal predictability in one call —
    /// equivalent to calling [`Exec::branch`] `n` times.
    fn branch_run(&mut self, n: u64, predictable: bool) {
        for _ in 0..n {
            self.branch(predictable);
        }
    }
}

/// A sink that ignores everything — kernels run at native speed.
///
/// # Examples
///
/// ```
/// use mb_cpu::ops::{Exec, FlopKind, NullExec, Precision};
/// let mut e = NullExec;
/// e.flop(FlopKind::Add, Precision::F64, 4);
/// e.int_ops(10);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullExec;

impl Exec for NullExec {
    #[inline(always)]
    fn flop(&mut self, _kind: FlopKind, _prec: Precision, _lanes: u32) {}
    #[inline(always)]
    fn int_ops(&mut self, _n: u64) {}
    #[inline(always)]
    fn load(&mut self, _addr: u64, _bytes: u32) {}
    #[inline(always)]
    fn store(&mut self, _addr: u64, _bytes: u32) {}
    #[inline(always)]
    fn branch(&mut self, _predictable: bool) {}
    #[inline(always)]
    fn flop_run(&mut self, _kind: FlopKind, _prec: Precision, _lanes: u32, _n: u64) {}
    #[inline(always)]
    fn branch_run(&mut self, _n: u64, _predictable: bool) {}
}

/// Aggregated operation counts — a workload characterisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Scalar-equivalent flops (lanes × per-op flops), double precision.
    pub flops_f64: u64,
    /// Scalar-equivalent flops, single precision.
    pub flops_f32: u64,
    /// Flop *instructions* (one per `flop` call), i.e. not lane-scaled.
    pub flop_instructions: u64,
    /// Division + square-root flops (long-latency subset, lane-scaled).
    pub long_latency_flops: u64,
    /// Integer/logic operations.
    pub int_ops: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Bytes loaded.
    pub load_bytes: u64,
    /// Bytes stored.
    pub store_bytes: u64,
    /// Branches.
    pub branches: u64,
    /// Branches flagged unpredictable.
    pub unpredictable_branches: u64,
}

impl OpCounts {
    /// Total scalar-equivalent flops, both precisions.
    pub fn total_flops(&self) -> u64 {
        self.flops_f64 + self.flops_f32
    }

    /// Total memory accesses.
    pub fn memory_accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.load_bytes + self.store_bytes
    }

    /// Arithmetic intensity: flops per byte moved (0 when no bytes).
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.total_bytes();
        if b == 0 {
            0.0
        } else {
            self.total_flops() as f64 / b as f64
        }
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        self.flops_f64 += other.flops_f64;
        self.flops_f32 += other.flops_f32;
        self.flop_instructions += other.flop_instructions;
        self.long_latency_flops += other.long_latency_flops;
        self.int_ops += other.int_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_bytes += other.load_bytes;
        self.store_bytes += other.store_bytes;
        self.branches += other.branches;
        self.unpredictable_branches += other.unpredictable_branches;
    }
}

/// A sink that tallies [`OpCounts`] without costing anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingExec {
    counts: OpCounts,
}

impl CountingExec {
    /// Creates a zeroed counter sink.
    pub fn new() -> Self {
        CountingExec::default()
    }

    /// The tallied counts.
    pub fn counts(&self) -> &OpCounts {
        &self.counts
    }

    /// Consumes the sink, returning the counts.
    pub fn into_counts(self) -> OpCounts {
        self.counts
    }
}

impl Exec for CountingExec {
    fn flop(&mut self, kind: FlopKind, prec: Precision, lanes: u32) {
        let f = kind.flops() * lanes as u64;
        match prec {
            Precision::F64 => self.counts.flops_f64 += f,
            Precision::F32 => self.counts.flops_f32 += f,
        }
        self.counts.flop_instructions += 1;
        if matches!(kind, FlopKind::Div | FlopKind::Sqrt) {
            self.counts.long_latency_flops += lanes as u64;
        }
    }

    fn int_ops(&mut self, n: u64) {
        self.counts.int_ops += n;
    }

    fn load(&mut self, _addr: u64, bytes: u32) {
        self.counts.loads += 1;
        self.counts.load_bytes += bytes as u64;
    }

    fn store(&mut self, _addr: u64, bytes: u32) {
        self.counts.stores += 1;
        self.counts.store_bytes += bytes as u64;
    }

    fn branch(&mut self, predictable: bool) {
        self.counts.branches += 1;
        if !predictable {
            self.counts.unpredictable_branches += 1;
        }
    }

    fn flop_run(&mut self, kind: FlopKind, prec: Precision, lanes: u32, n: u64) {
        let f = kind.flops() * lanes as u64 * n;
        match prec {
            Precision::F64 => self.counts.flops_f64 += f,
            Precision::F32 => self.counts.flops_f32 += f,
        }
        self.counts.flop_instructions += n;
        if matches!(kind, FlopKind::Div | FlopKind::Sqrt) {
            self.counts.long_latency_flops += lanes as u64 * n;
        }
    }

    fn branch_run(&mut self, n: u64, predictable: bool) {
        self.counts.branches += n;
        if !predictable {
            self.counts.unpredictable_branches += n;
        }
    }
}

/// Forwards every report to two sinks — e.g. counting *and* modelling in
/// one pass.
#[derive(Debug)]
pub struct TeeExec<'a, A, B> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<'a, A: Exec, B: Exec> TeeExec<'a, A, B> {
    /// Creates a tee over two sinks.
    pub fn new(a: &'a mut A, b: &'a mut B) -> Self {
        TeeExec { a, b }
    }
}

impl<A: Exec, B: Exec> Exec for TeeExec<'_, A, B> {
    fn flop(&mut self, kind: FlopKind, prec: Precision, lanes: u32) {
        self.a.flop(kind, prec, lanes);
        self.b.flop(kind, prec, lanes);
    }
    fn int_ops(&mut self, n: u64) {
        self.a.int_ops(n);
        self.b.int_ops(n);
    }
    fn load(&mut self, addr: u64, bytes: u32) {
        self.a.load(addr, bytes);
        self.b.load(addr, bytes);
    }
    fn store(&mut self, addr: u64, bytes: u32) {
        self.a.store(addr, bytes);
        self.b.store(addr, bytes);
    }
    fn branch(&mut self, predictable: bool) {
        self.a.branch(predictable);
        self.b.branch(predictable);
    }
    fn flop_run(&mut self, kind: FlopKind, prec: Precision, lanes: u32, n: u64) {
        self.a.flop_run(kind, prec, lanes, n);
        self.b.flop_run(kind, prec, lanes, n);
    }
    fn branch_run(&mut self, n: u64, predictable: bool) {
        self.a.branch_run(n, predictable);
        self.b.branch_run(n, predictable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_kind_flop_counts() {
        assert_eq!(FlopKind::Add.flops(), 1);
        assert_eq!(FlopKind::Fma.flops(), 2);
        assert_eq!(FlopKind::Div.flops(), 1);
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::F32.bytes(), 4);
        assert_eq!(Precision::F64.bytes(), 8);
    }

    #[test]
    fn counting_exec_tallies() {
        let mut e = CountingExec::new();
        e.flop(FlopKind::Fma, Precision::F64, 2); // 4 f64 flops
        e.flop(FlopKind::Add, Precision::F32, 4); // 4 f32 flops
        e.flop(FlopKind::Div, Precision::F64, 1); // long latency
        e.int_ops(7);
        e.load(0x100, 8);
        e.load(0x108, 8);
        e.store(0x200, 4);
        e.branch(true);
        e.branch(false);
        let c = e.counts();
        assert_eq!(c.flops_f64, 5);
        assert_eq!(c.flops_f32, 4);
        assert_eq!(c.total_flops(), 9);
        assert_eq!(c.flop_instructions, 3);
        assert_eq!(c.long_latency_flops, 1);
        assert_eq!(c.int_ops, 7);
        assert_eq!(c.loads, 2);
        assert_eq!(c.stores, 1);
        assert_eq!(c.load_bytes, 16);
        assert_eq!(c.store_bytes, 4);
        assert_eq!(c.memory_accesses(), 3);
        assert_eq!(c.total_bytes(), 20);
        assert_eq!(c.branches, 2);
        assert_eq!(c.unpredictable_branches, 1);
    }

    #[test]
    fn arithmetic_intensity() {
        let mut e = CountingExec::new();
        e.flop(FlopKind::Add, Precision::F64, 1);
        e.load(0, 8);
        assert!((e.counts().arithmetic_intensity() - 0.125).abs() < 1e-12);
        let empty = OpCounts::default();
        assert_eq!(empty.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CountingExec::new();
        a.flop(FlopKind::Add, Precision::F64, 1);
        a.load(0, 8);
        let mut b = CountingExec::new();
        b.flop(FlopKind::Mul, Precision::F64, 1);
        b.store(0, 8);
        let mut total = *a.counts();
        total.merge(b.counts());
        assert_eq!(total.total_flops(), 2);
        assert_eq!(total.loads, 1);
        assert_eq!(total.stores, 1);
    }

    #[test]
    fn tee_feeds_both() {
        let mut a = CountingExec::new();
        let mut b = CountingExec::new();
        {
            let mut tee = TeeExec::new(&mut a, &mut b);
            tee.flop(FlopKind::Add, Precision::F64, 1);
            tee.branch(true);
        }
        assert_eq!(a.counts().flops_f64, 1);
        assert_eq!(b.counts().flops_f64, 1);
        assert_eq!(a.counts().branches, 1);
    }

    #[test]
    fn null_exec_is_inert() {
        let mut e = NullExec;
        e.flop(FlopKind::Sqrt, Precision::F32, 16);
        e.load(0, 4);
        // Nothing to assert beyond "it compiles and runs".
    }
}
