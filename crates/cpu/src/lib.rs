//! # mb-cpu — CPU cost models and kernel instrumentation
//!
//! The paper compares an out-of-order x86 server core (Nehalem, Xeon
//! X5550) against an in-order embedded core (ARM Cortex-A9, in the
//! Snowball's A9500 and Tibidabo's Tegra2). We have neither machine, so
//! this crate provides the substitute: a **spec-driven cost model** that
//! converts the *operation stream* of a real Rust kernel into cycles on
//! either core.
//!
//! The pieces:
//!
//! * [`ops`] — the architecture-neutral operation vocabulary and the
//!   [`ops::Exec`] sink trait kernels are written against. A kernel
//!   generic over `E: Exec` runs at native speed with [`ops::NullExec`],
//!   counts operations with [`ops::CountingExec`], and is costed on a
//!   machine with [`exec_model::ModelExec`].
//! * [`arch`] — [`arch::CoreModel`]: issue widths, floating-point and SIMD
//!   throughputs, in-order vs out-of-order overlap, memory-level
//!   parallelism, branch prediction. Presets for Nehalem, Cortex-A9
//!   (Snowball and Tegra2 flavours) and the prospective Exynos 5.
//! * [`counters`] — PAPI-style counter sets ([`counters::CounterSet`]),
//!   the interface the paper's auto-tuning study (Figure 7) reads.
//! * [`exec_model`] — the [`exec_model::ModelExec`] sink wiring a
//!   [`arch::CoreModel`] to an [`mb_mem::hierarchy::Hierarchy`] and a TLB,
//!   with optional sampling so large kernels stay cheap to cost.
//!
//! # Examples
//!
//! ```
//! use mb_cpu::arch::CoreModel;
//! use mb_cpu::exec_model::ModelExec;
//! use mb_cpu::ops::{Exec, FlopKind, Precision};
//!
//! // A dot product, written once, costed on the Snowball's Cortex-A9.
//! fn dot<E: Exec>(a: &[f64], b: &[f64], e: &mut E) -> f64 {
//!     let mut acc = 0.0;
//!     for i in 0..a.len() {
//!         e.load(a.as_ptr() as u64 + (i * 8) as u64, 8);
//!         e.load(b.as_ptr() as u64 + (i * 8) as u64, 8);
//!         e.flop(FlopKind::Fma, Precision::F64, 1);
//!         acc += a[i] * b[i];
//!     }
//!     acc
//! }
//!
//! let a = vec![1.0; 256];
//! let b = vec![2.0; 256];
//! let mut exec = ModelExec::snowball();
//! let r = dot(&a, &b, &mut exec);
//! assert_eq!(r, 512.0);
//! let report = exec.finish();
//! assert!(report.cycles.get() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod counters;
pub mod exec_model;
pub mod gpu;
pub mod ops;
#[cfg(feature = "validate")]
pub mod validate;

pub use arch::{CoreModel, Overlap};
pub use gpu::GpuModel;
pub use counters::{Counter, CounterSet};
pub use exec_model::{ExecReport, ModelExec};
pub use ops::{CountingExec, Exec, FlopKind, NullExec, OpCounts, Precision};
#[cfg(feature = "validate")]
pub use validate::{Region, ValidatingExec};
