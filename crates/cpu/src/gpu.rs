//! Embedded-GPU accelerator models (§VI.A, "Toward Hybrid Embedded
//! Platforms").
//!
//! The paper's perspective section: Tibidabo gains Tegra 3 boards with a
//! GPGPU-capable GPU so that single-precision codes (SPECFEM3D) can
//! offload, and the final prototype's Exynos 5 brings a Mali-T604. A
//! [`GpuModel`] is deliberately coarse — peak rate per precision, memory
//! bandwidth, host-transfer cost, launch overhead — because the paper
//! itself argues the offload decision hinges on exactly these envelope
//! numbers (and on whether the GPU supports the code's precision at
//! all).

use crate::ops::Precision;
use mb_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// A coarse embedded-GPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Marketing name.
    pub name: String,
    /// Peak single-precision GFLOPS.
    pub peak_gflops_f32: f64,
    /// Peak double-precision GFLOPS (0 = unsupported, the common case
    /// for this generation).
    pub peak_gflops_f64: f64,
    /// Fraction of peak a tuned kernel achieves.
    pub efficiency: f64,
    /// Device memory bandwidth, GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Host↔device transfer bandwidth, GB/s (shared-memory SoCs are
    /// fast here; discrete parts are not).
    pub transfer_gbps: f64,
    /// Fixed overhead per kernel launch.
    pub launch_overhead: SimTime,
}

impl GpuModel {
    /// The Snowball's Mali-400: a pre-GPGPU part — present on the board
    /// but useless for compute (the paper never offloads to it).
    pub fn mali400() -> Self {
        GpuModel {
            name: "Mali-400 (Snowball, no GPGPU)".to_string(),
            peak_gflops_f32: 0.0,
            peak_gflops_f64: 0.0,
            efficiency: 0.0,
            mem_bandwidth_gbps: 0.0,
            transfer_gbps: 0.0,
            launch_overhead: SimTime::ZERO,
        }
    }

    /// The Tegra 3 extension GPU of §VI.A: "an adjoined GPU suitable for
    /// general purpose programming … for codes that can use single
    /// precision". ~12 GFLOPS SP, no DP.
    pub fn tegra3_gpu() -> Self {
        GpuModel {
            name: "Tegra 3 GPU (SP only)".to_string(),
            peak_gflops_f32: 12.0,
            peak_gflops_f64: 0.0,
            efficiency: 0.5,
            mem_bandwidth_gbps: 6.0,
            transfer_gbps: 3.0,
            launch_overhead: SimTime::from_micros(80),
        }
    }

    /// The Mali-T604 of the final prototype (§VI.A): GPGPU via OpenCL,
    /// with the node envelope "about a 100 GFLOPS for … 5 Watts".
    pub fn mali_t604() -> Self {
        GpuModel {
            name: "Mali-T604 (Exynos 5)".to_string(),
            peak_gflops_f32: 68.0,
            peak_gflops_f64: 17.0, // native FP64 at a quarter rate
            efficiency: 0.45,
            mem_bandwidth_gbps: 12.8,
            transfer_gbps: 6.0, // shared LPDDR3
            launch_overhead: SimTime::from_micros(60),
        }
    }

    /// Whether the GPU can execute the given precision at all.
    pub fn supports(&self, prec: Precision) -> bool {
        match prec {
            Precision::F32 => self.peak_gflops_f32 > 0.0,
            Precision::F64 => self.peak_gflops_f64 > 0.0,
        }
    }

    /// Time to run an offloaded kernel: transfers in, executes
    /// (compute/bandwidth-bound, whichever is slower), transfers out.
    /// Returns `None` when the precision is unsupported — the paper's
    /// hard constraint for double-precision codes on SP-only parts.
    ///
    /// # Panics
    ///
    /// Panics if `flops` is negative or non-finite.
    pub fn offload_time(
        &self,
        flops: f64,
        prec: Precision,
        bytes_in: u64,
        bytes_out: u64,
    ) -> Option<SimTime> {
        assert!(flops.is_finite() && flops >= 0.0, "flops must be >= 0");
        if !self.supports(prec) {
            return None;
        }
        let peak = match prec {
            Precision::F32 => self.peak_gflops_f32,
            Precision::F64 => self.peak_gflops_f64,
        };
        let compute_secs = flops / (peak * 1e9 * self.efficiency);
        // Device-side traffic: assume the kernel streams its inputs once.
        let device_secs = (bytes_in + bytes_out) as f64 / (self.mem_bandwidth_gbps * 1e9);
        let transfer_secs = (bytes_in + bytes_out) as f64 / (self.transfer_gbps * 1e9);
        Some(
            self.launch_overhead
                + SimTime::from_secs_f64(compute_secs.max(device_secs) + transfer_secs),
        )
    }

    /// Peak GFLOPS at a precision (0 when unsupported).
    pub fn peak_gflops(&self, prec: Precision) -> f64 {
        match prec {
            Precision::F32 => self.peak_gflops_f32,
            Precision::F64 => self.peak_gflops_f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_support_matrix() {
        assert!(!GpuModel::mali400().supports(Precision::F32));
        assert!(GpuModel::tegra3_gpu().supports(Precision::F32));
        assert!(!GpuModel::tegra3_gpu().supports(Precision::F64));
        assert!(GpuModel::mali_t604().supports(Precision::F64));
    }

    #[test]
    fn dp_offload_refused_on_sp_parts() {
        let gpu = GpuModel::tegra3_gpu();
        assert!(gpu.offload_time(1e9, Precision::F64, 1 << 20, 1 << 20).is_none());
        assert!(gpu.offload_time(1e9, Precision::F32, 1 << 20, 1 << 20).is_some());
    }

    #[test]
    fn compute_bound_kernel_scales_with_flops() {
        let gpu = GpuModel::mali_t604();
        let t1 = gpu
            .offload_time(1e9, Precision::F32, 1024, 1024)
            .expect("supported");
        let t2 = gpu
            .offload_time(2e9, Precision::F32, 1024, 1024)
            .expect("supported");
        assert!(t2 > t1);
        assert!(t2.as_secs_f64() / t1.as_secs_f64() < 2.1);
    }

    #[test]
    fn transfer_dominates_tiny_kernels() {
        let gpu = GpuModel::tegra3_gpu();
        // 1 kflop on 64 MB of data: transfer-bound.
        let t = gpu
            .offload_time(1e3, Precision::F32, 32 << 20, 32 << 20)
            .expect("supported");
        let transfer_secs = (64u64 << 20) as f64 / 3e9;
        assert!(t.as_secs_f64() > transfer_secs * 0.99);
    }

    #[test]
    fn launch_overhead_floors_latency() {
        let gpu = GpuModel::mali_t604();
        let t = gpu.offload_time(0.0, Precision::F32, 0, 0).expect("supported");
        assert_eq!(t, gpu.launch_overhead);
    }
}
