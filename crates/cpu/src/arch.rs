//! Core micro-architecture models.
//!
//! A [`CoreModel`] is a bag of published micro-architectural parameters —
//! issue widths, floating-point/SIMD throughputs, memory-level
//! parallelism, branch-miss penalties — plus an [`Overlap`] discipline
//! that says how compute and memory cycles combine (out-of-order cores
//! overlap them; in-order cores mostly cannot).
//!
//! The numbers in the presets come from vendor documentation and public
//! micro-benchmark literature for the three chips of the paper, **not**
//! from fitting the paper's results; see `DESIGN.md §4`.

use mb_simcore::time::Frequency;
use serde::{Deserialize, Serialize};

use crate::ops::Precision;

/// How compute and memory cycle totals combine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Overlap {
    /// Out-of-order execution: compute and memory overlap, the total is
    /// `max(compute, memory)` plus un-hidable stalls.
    OutOfOrder,
    /// In-order execution: compute and memory mostly serialise. The
    /// `issue_efficiency` factor (0–1] models limited dual-issue: 1.0
    /// means perfect dual-issue of independent ops, lower values model
    /// dependency stalls typical of real code.
    InOrder {
        /// Fraction of the theoretical issue rate achieved on real code.
        issue_efficiency: f64,
    },
}

/// A cost model of one CPU core.
///
/// # Examples
///
/// ```
/// use mb_cpu::arch::CoreModel;
///
/// let xeon = CoreModel::nehalem();
/// let arm = CoreModel::cortex_a9_snowball();
/// // Peak double-precision throughput per core: SSE gives Nehalem a
/// // large advantage because the A9's NEON unit cannot do f64 at all.
/// assert!(xeon.peak_flops_per_cycle_f64() >= 4.0 * arm.peak_flops_per_cycle_f64());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreModel {
    /// Human-readable name.
    pub name: String,
    /// Core clock.
    pub frequency: Frequency,
    /// Scalar double-precision flops per cycle.
    pub f64_scalar_flops_per_cycle: f64,
    /// SIMD double-precision flops per cycle (equals the scalar rate when
    /// the core has no double-precision SIMD — the Cortex-A9 case).
    pub f64_simd_flops_per_cycle: f64,
    /// Scalar single-precision flops per cycle.
    pub f32_scalar_flops_per_cycle: f64,
    /// SIMD single-precision flops per cycle.
    pub f32_simd_flops_per_cycle: f64,
    /// Extra cycles charged per divide/sqrt lane.
    pub long_latency_penalty_cycles: f64,
    /// Simple integer/logic ops per cycle.
    pub int_ops_per_cycle: f64,
    /// L1 accesses that can be issued per cycle.
    pub mem_issue_per_cycle: f64,
    /// Maximum outstanding cache misses (memory-level parallelism
    /// ceiling; line-fill buffers on real hardware).
    pub max_outstanding_misses: u32,
    /// Cycles lost per mispredicted branch.
    pub branch_miss_penalty_cycles: u64,
    /// Prediction accuracy on loop-like (predictable) branches.
    pub predictable_accuracy: f64,
    /// Prediction accuracy on data-dependent branches.
    pub unpredictable_accuracy: f64,
    /// Compute/memory overlap discipline.
    pub overlap: Overlap,
    /// Native SIMD register width in bits.
    pub simd_width_bits: u32,
    /// Whether SIMD supports double precision.
    pub simd_f64: bool,
    /// Unrolling beyond this degree starts spilling registers.
    pub unroll_register_limit: u32,
    /// Cost multiplier for 128-bit memory accesses (the A9 splits them
    /// over its 64-bit bus; Nehalem does not).
    pub mem_penalty_128bit: f64,
    /// Fraction of miss stalls the hardware prefetcher hides on a fully
    /// predictable (constant-stride) access pattern, in `[0, 1]`.
    pub prefetch_efficiency: f64,
}

impl CoreModel {
    /// Intel Nehalem core as in the Xeon X5550: 2.66 GHz, out-of-order,
    /// 128-bit SSE with double precision, deep load/store unit.
    pub fn nehalem() -> Self {
        CoreModel {
            name: "Nehalem (Xeon X5550)".to_string(),
            frequency: Frequency::from_mhz(2660),
            f64_scalar_flops_per_cycle: 2.0, // 1 add + 1 mul port
            f64_simd_flops_per_cycle: 4.0,   // 2-wide SSE on both ports
            f32_scalar_flops_per_cycle: 2.0,
            f32_simd_flops_per_cycle: 8.0, // 4-wide SSE
            long_latency_penalty_cycles: 20.0,
            int_ops_per_cycle: 3.0,
            mem_issue_per_cycle: 1.5, // 1 load + 1 store every other cycle
            max_outstanding_misses: 10, // line-fill buffers
            branch_miss_penalty_cycles: 17,
            predictable_accuracy: 0.995,
            unpredictable_accuracy: 0.85,
            overlap: Overlap::OutOfOrder,
            simd_width_bits: 128,
            simd_f64: true,
            unroll_register_limit: 8,
            mem_penalty_128bit: 1.0,
            prefetch_efficiency: 0.95,
        }
    }

    /// ARM Cortex-A9 @ 1 GHz as in the Snowball's A9500: in-order-ish
    /// dual issue, VFP double precision (no f64 SIMD — NEON is single
    /// precision only, §II.B), shallow miss queue.
    pub fn cortex_a9_snowball() -> Self {
        CoreModel {
            name: "Cortex-A9 (Snowball A9500)".to_string(),
            frequency: Frequency::from_ghz(1.0),
            f64_scalar_flops_per_cycle: 1.0, // VFPv3 pipelined MAC
            f64_simd_flops_per_cycle: 1.0,   // no DP SIMD: same as scalar
            f32_scalar_flops_per_cycle: 1.0,
            f32_simd_flops_per_cycle: 4.0, // NEON: 2 f32 MACs/cycle
            long_latency_penalty_cycles: 28.0,
            int_ops_per_cycle: 2.0,
            mem_issue_per_cycle: 1.0,
            max_outstanding_misses: 2, // tiny miss queue
            branch_miss_penalty_cycles: 9,
            predictable_accuracy: 0.98,
            unpredictable_accuracy: 0.80,
            overlap: Overlap::InOrder {
                issue_efficiency: 0.65,
            },
            simd_width_bits: 128,
            simd_f64: false,
            unroll_register_limit: 4,
            // A 16-byte access costs two slots on the A9's 64-bit LSU
            // (an LDRD/VLDM pair). NEON-specific 128-bit load overheads
            // are modelled by the kernels that explicitly vectorise.
            mem_penalty_128bit: 2.0,
            prefetch_efficiency: 0.9, // PL310 + PLD stride prefetch
        }
    }

    /// ARM Cortex-A9 @ 1 GHz as in Tibidabo's Tegra2 nodes.
    ///
    /// Identical core to the Snowball's; the Tegra2 has **no NEON unit**
    /// at all, so even single-precision SIMD falls back to VFP rates.
    pub fn cortex_a9_tegra2() -> Self {
        let mut m = CoreModel::cortex_a9_snowball();
        m.name = "Cortex-A9 (Tegra2)".to_string();
        m.f32_simd_flops_per_cycle = 1.0; // no NEON on Tegra2
        m.simd_width_bits = 64;
        m
    }

    /// Prospective Samsung Exynos 5 Dual (Cortex-A15 @ 1.7 GHz), the
    /// final Mont-Blanc prototype chip of Section VI.A.
    pub fn cortex_a15_exynos5() -> Self {
        CoreModel {
            name: "Cortex-A15 (Exynos 5 Dual)".to_string(),
            frequency: Frequency::from_ghz(1.7),
            f64_scalar_flops_per_cycle: 2.0, // VFPv4 FMA
            f64_simd_flops_per_cycle: 2.0,
            f32_scalar_flops_per_cycle: 2.0,
            f32_simd_flops_per_cycle: 8.0, // NEONv2 FMA
            long_latency_penalty_cycles: 18.0,
            int_ops_per_cycle: 3.0,
            mem_issue_per_cycle: 1.5,
            max_outstanding_misses: 6,
            branch_miss_penalty_cycles: 15,
            predictable_accuracy: 0.99,
            unpredictable_accuracy: 0.85,
            overlap: Overlap::OutOfOrder,
            simd_width_bits: 128,
            simd_f64: false,
            unroll_register_limit: 10,
            mem_penalty_128bit: 1.2,
            prefetch_efficiency: 0.9,
        }
    }

    /// Peak double-precision flops per cycle (best unit).
    pub fn peak_flops_per_cycle_f64(&self) -> f64 {
        self.f64_scalar_flops_per_cycle
            .max(self.f64_simd_flops_per_cycle)
    }

    /// Peak single-precision flops per cycle (best unit).
    pub fn peak_flops_per_cycle_f32(&self) -> f64 {
        self.f32_scalar_flops_per_cycle
            .max(self.f32_simd_flops_per_cycle)
    }

    /// Peak GFLOPS for one core at the given precision.
    pub fn peak_gflops(&self, prec: Precision) -> f64 {
        let per_cycle = match prec {
            Precision::F64 => self.peak_flops_per_cycle_f64(),
            Precision::F32 => self.peak_flops_per_cycle_f32(),
        };
        per_cycle * self.frequency.as_hz() as f64 / 1e9
    }

    /// Flops-per-cycle rate for a flop instruction with `lanes` lanes at
    /// `prec`: lanes beyond 1 use the SIMD unit only when the hardware
    /// supports that precision in SIMD.
    pub fn flop_rate(&self, prec: Precision, lanes: u32) -> f64 {
        match prec {
            Precision::F64 => {
                if lanes > 1 && self.simd_f64 {
                    self.f64_simd_flops_per_cycle
                } else {
                    self.f64_scalar_flops_per_cycle
                }
            }
            Precision::F32 => {
                if lanes > 1 && self.f32_simd_flops_per_cycle > self.f32_scalar_flops_per_cycle {
                    self.f32_simd_flops_per_cycle
                } else {
                    self.f32_scalar_flops_per_cycle
                }
            }
        }
    }

    /// Branch-prediction accuracy for a branch of the given kind.
    pub fn branch_accuracy(&self, predictable: bool) -> f64 {
        if predictable {
            self.predictable_accuracy
        } else {
            self.unpredictable_accuracy
        }
    }

    /// Effective memory-level parallelism for a loop unrolled `unroll`
    /// times: unrolling exposes independent misses up to the hardware
    /// ceiling.
    pub fn effective_mlp(&self, unroll: u32) -> f64 {
        unroll.max(1).min(self.max_outstanding_misses) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nehalem_peaks() {
        let m = CoreModel::nehalem();
        // 4 DP flops/cycle @ 2.66 GHz = 10.64 GFLOPS per core.
        assert!((m.peak_gflops(Precision::F64) - 10.64).abs() < 0.01);
        assert!((m.peak_gflops(Precision::F32) - 21.28).abs() < 0.01);
    }

    #[test]
    fn a9_has_no_dp_simd() {
        let m = CoreModel::cortex_a9_snowball();
        assert!(!m.simd_f64);
        // DP peak is 1 flop/cycle @ 1 GHz = 1 GFLOPS per core.
        assert!((m.peak_gflops(Precision::F64) - 1.0).abs() < 1e-9);
        // SP SIMD peak is 4 GFLOPS per core.
        assert!((m.peak_gflops(Precision::F32) - 4.0).abs() < 1e-9);
        // Requesting 2 f64 lanes falls back to the scalar rate.
        assert_eq!(m.flop_rate(Precision::F64, 2), 1.0);
        assert_eq!(m.flop_rate(Precision::F32, 4), 4.0);
    }

    #[test]
    fn tegra2_lacks_neon() {
        let m = CoreModel::cortex_a9_tegra2();
        assert_eq!(m.flop_rate(Precision::F32, 4), 1.0);
    }

    #[test]
    fn nehalem_simd_rates() {
        let m = CoreModel::nehalem();
        assert_eq!(m.flop_rate(Precision::F64, 2), 4.0);
        assert_eq!(m.flop_rate(Precision::F64, 1), 2.0);
        assert_eq!(m.flop_rate(Precision::F32, 4), 8.0);
    }

    #[test]
    fn mlp_clamps_to_hardware() {
        let xeon = CoreModel::nehalem();
        let arm = CoreModel::cortex_a9_snowball();
        assert_eq!(xeon.effective_mlp(8), 8.0);
        assert_eq!(xeon.effective_mlp(16), 10.0);
        assert_eq!(arm.effective_mlp(8), 2.0);
        assert_eq!(arm.effective_mlp(0), 1.0);
    }

    #[test]
    fn branch_accuracy_selection() {
        let m = CoreModel::nehalem();
        assert!(m.branch_accuracy(true) > m.branch_accuracy(false));
    }

    #[test]
    fn exynos5_outclasses_a9() {
        let a15 = CoreModel::cortex_a15_exynos5();
        let a9 = CoreModel::cortex_a9_snowball();
        assert!(a15.peak_gflops(Precision::F64) > 3.0 * a9.peak_gflops(Precision::F64));
    }
}
