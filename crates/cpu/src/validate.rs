//! The runtime invariant sanitizer — `mb-check`'s dynamic half.
//!
//! [`ValidatingExec`] sandwiches any [`Exec`] sink and asserts stream
//! invariants as operations flow through, compiled only under the
//! `validate` feature so production sweeps pay nothing:
//!
//! * **Region containment** — every load/store falls inside a declared
//!   address region (the membench array, its spill slots, …). An access
//!   outside is the simulation analogue of a wild pointer.
//! * **Batch/per-op consistency** — `flop_run`/`branch_run` totals must
//!   equal the sum of the equivalent per-op calls. The wrapper tallies
//!   both forms independently (expanding a bounded prefix of each batch
//!   op by op) and cross-checks after every batch call.
//! * **Operand sanity** — zero-byte accesses, zero-lane flops and other
//!   degenerate operands are flagged at the first offending call.
//!
//! For a wrapped [`ModelExec`], [`ValidatingExec::finish`] additionally
//! validates the report: cycle components finite and non-negative,
//! counters consistent with the operation tally, and the inner sink's
//! counts bit-identical to the wrapper's shadow tally.
//!
//! The wrapper never changes what reaches the inner sink, so a
//! `validate` build produces bit-identical numbers to a normal build —
//! the acceptance gate exercised by `crates/core/tests/validate_smoke.rs`.

use crate::exec_model::{ExecReport, ModelExec};
use crate::ops::{CountingExec, Exec, FlopKind, OpCounts, Precision};

/// How many ops of each batch call are replayed one by one for the
/// batch/per-op cross-check; the remainder is added in closed form.
const EXPAND_CAP: u64 = 4096;

/// A named address region accesses are validated against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Human-readable name, surfaced in violations.
    pub name: String,
    /// First byte address of the region.
    pub base: u64,
    /// Region length in bytes.
    pub bytes: u64,
}

impl Region {
    fn contains(&self, addr: u64, bytes: u32) -> bool {
        addr >= self.base && addr + bytes as u64 <= self.base + self.bytes
    }
}

/// An [`Exec`] wrapper asserting stream invariants (see module docs).
#[derive(Debug)]
pub struct ValidatingExec<E> {
    inner: E,
    regions: Vec<Region>,
    violations: Vec<String>,
    strict: bool,
    /// Closed-form shadow tally: batch ops counted with one multiply.
    closed: CountingExec,
    /// Replay shadow tally: batch ops expanded per-op (capped, remainder
    /// closed-form). Diverges from `closed` only if batch semantics do.
    replayed: CountingExec,
}

impl<E: Exec> ValidatingExec<E> {
    /// Wraps a sink. Violations are collected; call [`Self::assert_clean`]
    /// at the end of the run (or use [`Self::strict`] to panic at the
    /// first offence).
    pub fn new(inner: E) -> Self {
        ValidatingExec {
            inner,
            regions: Vec::new(),
            violations: Vec::new(),
            strict: false,
            closed: CountingExec::new(),
            replayed: CountingExec::new(),
        }
    }

    /// Panic at the first violation instead of collecting.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Declares an address region loads and stores may touch. With no
    /// declared regions the containment check is off.
    pub fn declare_region(&mut self, name: impl Into<String>, base: u64, bytes: u64) {
        self.regions.push(Region {
            name: name.into(),
            base,
            bytes,
        });
    }

    /// The violations collected so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The wrapped sink, mutably (e.g. to set `ModelExec` hints).
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }

    /// Unwraps, discarding validation state.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// The wrapper's own operation tally (closed-form shadow).
    pub fn shadow_counts(&self) -> &OpCounts {
        self.closed.counts()
    }

    /// Panics with the full violation list unless the stream was clean.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "ValidatingExec: {} violation(s):\n{}",
            self.violations.len(),
            self.violations.join("\n")
        );
    }

    fn violate(&mut self, message: String) {
        if self.strict {
            panic!("ValidatingExec: {message}");
        }
        self.violations.push(message);
    }

    fn check_region(&mut self, what: &str, addr: u64, bytes: u32) {
        if bytes == 0 {
            self.violate(format!("{what} of zero bytes at {addr:#x}"));
            return;
        }
        if self.regions.is_empty() {
            return;
        }
        if !self.regions.iter().any(|r| r.contains(addr, bytes)) {
            let declared: Vec<String> = self
                .regions
                .iter()
                .map(|r| format!("{} [{:#x}, {:#x})", r.name, r.base, r.base + r.bytes))
                .collect();
            self.violate(format!(
                "{what} of {bytes} B at {addr:#x} outside every declared \
                 region: {}",
                declared.join(", ")
            ));
        }
    }

    /// Cross-checks the closed-form and replayed tallies after a batch
    /// call; they must agree field for field.
    fn check_batch(&mut self, what: &str) {
        if self.closed.counts() != self.replayed.counts() {
            let (c, r) = (*self.closed.counts(), *self.replayed.counts());
            self.violate(format!(
                "{what}: batch totals diverge from per-op sums \
                 (closed-form {c:?} vs replayed {r:?})"
            ));
            // Re-sync so one divergence is reported once, not forever.
            self.replayed = self.closed;
        }
    }
}

impl<E: Exec> Exec for ValidatingExec<E> {
    fn flop(&mut self, kind: FlopKind, prec: Precision, lanes: u32) {
        if lanes == 0 {
            self.violate(format!("flop({kind:?}, {prec:?}) with zero lanes"));
        }
        self.closed.flop(kind, prec, lanes);
        self.replayed.flop(kind, prec, lanes);
        self.inner.flop(kind, prec, lanes);
    }

    fn int_ops(&mut self, n: u64) {
        self.closed.int_ops(n);
        self.replayed.int_ops(n);
        self.inner.int_ops(n);
    }

    fn load(&mut self, addr: u64, bytes: u32) {
        self.check_region("load", addr, bytes);
        self.closed.load(addr, bytes);
        self.replayed.load(addr, bytes);
        self.inner.load(addr, bytes);
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        self.check_region("store", addr, bytes);
        self.closed.store(addr, bytes);
        self.replayed.store(addr, bytes);
        self.inner.store(addr, bytes);
    }

    fn branch(&mut self, predictable: bool) {
        self.closed.branch(predictable);
        self.replayed.branch(predictable);
        self.inner.branch(predictable);
    }

    fn flop_run(&mut self, kind: FlopKind, prec: Precision, lanes: u32, n: u64) {
        if lanes == 0 && n > 0 {
            self.violate(format!("flop_run({kind:?}, {prec:?}) with zero lanes"));
        }
        self.closed.flop_run(kind, prec, lanes, n);
        let replay = n.min(EXPAND_CAP);
        for _ in 0..replay {
            self.replayed.flop(kind, prec, lanes);
        }
        if n > replay {
            self.replayed.flop_run(kind, prec, lanes, n - replay);
        }
        self.check_batch("flop_run");
        self.inner.flop_run(kind, prec, lanes, n);
    }

    fn branch_run(&mut self, n: u64, predictable: bool) {
        self.closed.branch_run(n, predictable);
        let replay = n.min(EXPAND_CAP);
        for _ in 0..replay {
            self.replayed.branch(predictable);
        }
        if n > replay {
            self.replayed.branch_run(n - replay, predictable);
        }
        self.check_batch("branch_run");
        self.inner.branch_run(n, predictable);
    }
}

impl ValidatingExec<ModelExec> {
    /// Delegates to [`ModelExec::finish`] and validates the report:
    /// every cycle component finite and non-negative, totals covering
    /// the components, and the inner tally bit-identical to the shadow
    /// tally (any divergence means the model dropped or double-counted
    /// an operation).
    pub fn finish(&mut self) -> ExecReport {
        let report = self.inner.finish();
        for (name, value) in [
            ("compute_cycles", report.compute_cycles),
            ("memory_cycles", report.memory_cycles),
            ("branch_cycles", report.branch_cycles),
        ] {
            if !value.is_finite() || value < 0.0 {
                self.violate(format!("report {name} = {value} (negative or non-finite)"));
            }
        }
        if report.time.as_secs_f64() < 0.0 || !report.time.as_secs_f64().is_finite() {
            self.violate(format!("report time = {} (negative or non-finite)", report.time));
        }
        if report.counts != *self.closed.counts() {
            self.violate(format!(
                "inner counts diverge from the shadow tally \
                 (inner {:?} vs shadow {:?})",
                report.counts,
                self.closed.counts()
            ));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NullExec;

    #[test]
    fn clean_stream_has_no_violations() {
        let mut v = ValidatingExec::new(CountingExec::new());
        v.declare_region("array", 0x1000, 4096);
        v.flop(FlopKind::Fma, Precision::F64, 2);
        v.flop_run(FlopKind::Add, Precision::F32, 4, 10_000);
        v.load(0x1000, 8);
        v.store(0x1ff8, 8);
        v.branch_run(5_000, true);
        v.assert_clean();
        assert_eq!(v.inner().counts(), v.shadow_counts());
    }

    #[test]
    fn out_of_region_access_is_flagged() {
        let mut v = ValidatingExec::new(NullExec);
        v.declare_region("array", 0x1000, 4096);
        v.load(0xfff, 8); // below
        v.store(0x1ffc, 8); // straddles the end
        v.load(0x1800, 8); // fine
        assert_eq!(v.violations().len(), 2, "{:?}", v.violations());
        assert!(v.violations()[0].contains("outside every declared region"));
    }

    #[test]
    fn no_regions_means_no_containment_check() {
        let mut v = ValidatingExec::new(NullExec);
        v.load(0xDEAD_BEEF, 8);
        v.assert_clean();
    }

    #[test]
    fn zero_byte_access_is_flagged() {
        let mut v = ValidatingExec::new(NullExec);
        v.load(0x1000, 0);
        assert_eq!(v.violations().len(), 1);
    }

    #[test]
    fn zero_lane_flop_is_flagged() {
        let mut v = ValidatingExec::new(NullExec);
        v.flop(FlopKind::Add, Precision::F64, 0);
        v.flop_run(FlopKind::Add, Precision::F64, 0, 10);
        assert_eq!(v.violations().len(), 2);
    }

    #[test]
    #[should_panic(expected = "ValidatingExec")]
    fn strict_mode_panics_immediately() {
        let mut v = ValidatingExec::new(NullExec).strict();
        v.declare_region("array", 0, 16);
        v.load(1 << 20, 8);
    }

    /// A sink whose batch methods are subtly wrong: `flop_run` drops one
    /// op. The wrapper's own tallies still agree (it validates the batch
    /// *semantics*, not the inner sink), but a wrapped ModelExec-style
    /// count comparison at finish() would catch the inner drift — here
    /// we check the wrapper forwards batches verbatim.
    #[test]
    fn batch_calls_forward_verbatim() {
        let mut v = ValidatingExec::new(CountingExec::new());
        v.flop_run(FlopKind::Mul, Precision::F64, 1, EXPAND_CAP + 123);
        v.branch_run(EXPAND_CAP + 7, false);
        v.assert_clean();
        let c = v.inner().counts();
        assert_eq!(c.flops_f64, EXPAND_CAP + 123);
        assert_eq!(c.branches, EXPAND_CAP + 7);
        assert_eq!(c.unpredictable_branches, EXPAND_CAP + 7);
        assert_eq!(v.inner().counts(), v.shadow_counts());
    }

    #[test]
    fn model_exec_report_validates_clean() {
        let mut v = ValidatingExec::new(ModelExec::snowball());
        v.declare_region("buffer", 0, 1 << 20);
        for i in 0..10_000u64 {
            v.load((i * 8) % (1 << 20), 8);
            v.flop(FlopKind::Fma, Precision::F64, 1);
            v.branch(true);
        }
        v.flop_run(FlopKind::Add, Precision::F32, 2, 50_000);
        let report = v.finish();
        v.assert_clean();
        assert!(report.cycles.get() > 0);
        assert_eq!(report.counts, *v.shadow_counts());
    }
}
