//! The `ModelExec` sink: costs a kernel's operation stream on a machine.
//!
//! [`ModelExec`] combines a [`CoreModel`] with an
//! [`mb_mem::hierarchy::Hierarchy`] and a [`mb_mem::tlb::Tlb`]. Kernels
//! report their operations through the [`Exec`] trait; [`ModelExec::finish`]
//! folds the accumulated evidence into cycles, wall-clock time and a
//! PAPI-style [`CounterSet`].
//!
//! ## Cost model
//!
//! * **Compute cycles** — each flop instruction costs
//!   `lanes·flops / rate(prec, lanes)` cycles (the rate honours the SIMD
//!   capability matrix, so f64 "vector" code on the A9 silently runs at
//!   scalar speed, the Figure 6 effect); divides and square roots add a
//!   long-latency penalty; integer ops cost `n / int_rate`.
//! * **Memory cycles** — every access costs issue bandwidth; misses cost
//!   the hierarchy latency divided by the effective memory-level
//!   parallelism (`min(unroll hint, hardware max)` — the Figure 6/7
//!   unrolling lever).
//! * **Combination** — out-of-order cores overlap compute with memory
//!   (`max`), in-order cores serialise (`sum / issue_efficiency`).
//! * **Branches** — expected mispredictions × penalty.
//!
//! ## Sampling
//!
//! Costing every access through the cache simulator is exact but slow for
//! billion-access kernels. With `sample_rate = k > 1` the hierarchy
//! simulates windows of 1024 consecutive accesses and skips `k−1` windows
//! between them (preserving spatial locality inside a window), then
//! scales miss counts by `k`. `sample_rate = 1` is exact and is the
//! default for every preset.

use mb_mem::hierarchy::{Hierarchy, HierarchyConfig};
use mb_mem::pages::PageTable;
use mb_mem::tlb::{Tlb, TlbConfig};
use mb_simcore::time::{Cycles, SimTime};
use serde::{Deserialize, Serialize};

use crate::arch::{CoreModel, Overlap};
use crate::counters::{Counter, CounterSet};
use crate::ops::{Exec, FlopKind, OpCounts, Precision};

/// Size of a simulated window when sampling (accesses).
const SAMPLE_WINDOW: u64 = 1024;

/// The final verdict of a modelled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Total modelled cycles.
    pub cycles: Cycles,
    /// Wall-clock time at the core's frequency.
    pub time: SimTime,
    /// PAPI-style counters.
    pub counters: CounterSet,
    /// Raw operation counts.
    pub counts: OpCounts,
    /// Cycles attributed to compute issue.
    pub compute_cycles: f64,
    /// Cycles attributed to memory (issue + stalls).
    pub memory_cycles: f64,
    /// Cycles attributed to branch mispredictions.
    pub branch_cycles: f64,
}

impl ExecReport {
    /// Achieved GFLOPS (both precisions pooled) over the modelled run.
    pub fn gflops(&self) -> f64 {
        let secs = self.time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.counts.total_flops() as f64 / secs / 1e9
        }
    }
}

/// An [`Exec`] sink that prices operations on a [`CoreModel`] backed by a
/// simulated memory hierarchy.
#[derive(Debug, Clone)]
pub struct ModelExec {
    model: CoreModel,
    hierarchy: Hierarchy,
    tlb: Tlb,
    tlb_miss_penalty_cycles: u64,
    l1_latency: u64,
    /// Per cache level: `(line_bytes / fill_bytes_per_cycle)` — transfer
    /// cycles one line fetched *from* that level occupies.
    fill_cost: Vec<f64>,
    memory_fill_cost: f64,
    sample_rate: u32,
    page_table: Option<PageTable>,

    // Accumulators.
    counts: OpCounts,
    flop_cycles: f64,
    access_index: u64,
    sampled_accesses: u64,
    sampled_latency: u64,
    sampled_fill_cycles: f64,
    sampled_l1_misses: u64,
    sampled_l2_accesses: u64,
    sampled_l2_misses: u64,
    sampled_tlb_misses: u64,
    wide_accesses: u64,
    mlp_hint: u32,
    prefetch_hint: f64,
}

impl ModelExec {
    /// Creates a sink from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is zero.
    pub fn new(
        model: CoreModel,
        hierarchy: HierarchyConfig,
        tlb: TlbConfig,
        tlb_miss_penalty_cycles: u64,
        sample_rate: u32,
    ) -> Self {
        assert!(sample_rate > 0, "sample rate must be at least 1");
        let l1_latency = hierarchy.levels[0].hit_latency_cycles;
        let line = hierarchy.l1_line_bytes() as f64;
        let fill_cost: Vec<f64> = hierarchy
            .levels
            .iter()
            .map(|l| line / l.fill_bytes_per_cycle)
            .collect();
        let memory_fill_cost = line / hierarchy.memory_fill_bytes_per_cycle;
        let default_mlp = match model.overlap {
            Overlap::OutOfOrder => 4,
            Overlap::InOrder { .. } => 1,
        };
        ModelExec {
            model,
            hierarchy: Hierarchy::new(hierarchy),
            tlb: Tlb::new(tlb),
            tlb_miss_penalty_cycles,
            l1_latency,
            fill_cost,
            memory_fill_cost,
            sample_rate,
            page_table: None,
            counts: OpCounts::default(),
            flop_cycles: 0.0,
            access_index: 0,
            sampled_accesses: 0,
            sampled_latency: 0,
            sampled_fill_cycles: 0.0,
            sampled_l1_misses: 0,
            sampled_l2_accesses: 0,
            sampled_l2_misses: 0,
            sampled_tlb_misses: 0,
            wide_accesses: 0,
            mlp_hint: default_mlp,
            prefetch_hint: 0.0,
        }
    }

    /// A Nehalem core over the Xeon X5550 hierarchy (exact costing).
    pub fn nehalem() -> Self {
        ModelExec::new(
            CoreModel::nehalem(),
            HierarchyConfig::xeon_x5550(),
            TlbConfig::new(64, 4096),
            30,
            1,
        )
    }

    /// A Cortex-A9 core over the Snowball A9500 hierarchy (exact costing).
    pub fn snowball() -> Self {
        ModelExec::new(
            CoreModel::cortex_a9_snowball(),
            HierarchyConfig::snowball_a9500(),
            TlbConfig::new(32, 4096),
            40,
            1,
        )
    }

    /// A Cortex-A9 core over the Tegra2 hierarchy (exact costing).
    pub fn tegra2() -> Self {
        ModelExec::new(
            CoreModel::cortex_a9_tegra2(),
            HierarchyConfig::tegra2(),
            TlbConfig::new(32, 4096),
            40,
            1,
        )
    }

    /// Sets the window-sampling rate (1 = exact). Returns `self` for
    /// builder-style chaining.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn with_sample_rate(mut self, rate: u32) -> Self {
        assert!(rate > 0, "sample rate must be at least 1");
        self.sample_rate = rate;
        self
    }

    /// Routes virtual addresses through a page table before they reach
    /// the (physically indexed) caches — the Section V.A.1 mechanism.
    /// Addresses reported by the kernel are then interpreted as offsets
    /// into the mapped buffer.
    pub fn with_page_table(mut self, table: PageTable) -> Self {
        self.page_table = Some(table);
        self
    }

    /// Replaces (or clears) the page table routing after construction —
    /// used by experiments that re-allocate their buffer per measurement
    /// (the Section V.A.1 protocol).
    pub fn set_page_table(&mut self, table: Option<PageTable>) {
        self.page_table = table;
    }

    /// Hints the memory-level parallelism the code shape exposes
    /// (typically the unroll degree). Clamped to the hardware ceiling at
    /// evaluation time.
    pub fn set_mlp_hint(&mut self, unroll: u32) {
        self.mlp_hint = unroll.max(1);
    }

    /// Hints how *predictable* the access pattern is for the hardware
    /// prefetcher, in `[0, 1]`: 1.0 for a constant-stride sweep (the
    /// membench kernel), 0.0 (the default) for pointer chasing. The
    /// hidden fraction of miss stalls is
    /// `predictability × prefetch_efficiency`.
    ///
    /// # Panics
    ///
    /// Panics if `predictability` is outside `[0, 1]`.
    pub fn set_prefetch_hint(&mut self, predictability: f64) {
        assert!(
            (0.0..=1.0).contains(&predictability),
            "predictability must be in [0, 1]"
        );
        self.prefetch_hint = predictability;
    }

    /// The core model being used.
    pub fn model(&self) -> &CoreModel {
        &self.model
    }

    fn route(&self, addr: u64) -> u64 {
        match &self.page_table {
            Some(t) => {
                if (addr as usize) < t.span_bytes() {
                    t.translate(addr)
                } else {
                    addr
                }
            }
            None => addr,
        }
    }

    fn mem_access(&mut self, addr: u64, bytes: u32, is_store: bool) {
        // Degenerate accesses corrupt the hierarchy statistics silently;
        // trap them in `validate` builds (kernels issue 1..=4096 B).
        #[cfg(feature = "validate")]
        assert!(
            (1..=4096).contains(&bytes),
            "mem_access({addr:#x}): {bytes} B outside 1..=4096"
        );
        self.access_index += 1;
        if bytes >= 16 {
            self.wide_accesses += 1;
        }
        // Window sampling: simulate window 0, skip windows 1..rate.
        let window = (self.access_index - 1) / SAMPLE_WINDOW;
        if self.sample_rate > 1 && !window.is_multiple_of(self.sample_rate as u64) {
            return;
        }
        self.sampled_accesses += 1;
        if !self.tlb.access(addr) {
            self.sampled_tlb_misses += 1;
            self.sampled_latency += self.tlb_miss_penalty_cycles;
        }
        let paddr = self.route(addr);
        let l1_misses_before = self.hierarchy.level_stats(0).misses;
        let (lvl, lat) = self.hierarchy.access(paddr);
        // Stores retire through the write buffer on both target cores:
        // they cost issue slots and fill bandwidth but never stall the
        // pipeline on a miss. Loads pay the full latency.
        if !is_store {
            self.sampled_latency += lat;
        }
        match lvl {
            mb_mem::hierarchy::HitLevel::Cache(i) if i > 0 => {
                self.sampled_fill_cycles += self.fill_cost[i];
            }
            mb_mem::hierarchy::HitLevel::Memory => {
                self.sampled_fill_cycles += self.memory_fill_cost;
            }
            _ => {}
        }
        if self.hierarchy.level_stats(0).misses > l1_misses_before {
            self.sampled_l1_misses += 1;
            self.sampled_l2_accesses += 1;
            if !matches!(lvl, mb_mem::hierarchy::HitLevel::Cache(1)) {
                self.sampled_l2_misses += 1;
            }
        }
    }

    /// Scale factor from sampled events to estimated totals.
    fn scale(&self) -> f64 {
        if self.sampled_accesses == 0 {
            1.0
        } else {
            self.access_index as f64 / self.sampled_accesses as f64
        }
    }

    /// Folds the accumulated evidence into a report and resets nothing —
    /// call once at the end of a run. (Taking `&mut self` rather than
    /// `self` keeps the sink usable behind generic kernels; repeated
    /// calls simply re-evaluate the same totals.)
    pub fn finish(&mut self) -> ExecReport {
        let m = &self.model;
        let scale = self.scale();

        // --- compute ---
        // Branches occupy issue slots like simple ALU ops do; their
        // *misprediction* cost is charged separately below.
        let int_cycles =
            (self.counts.int_ops + self.counts.branches) as f64 / m.int_ops_per_cycle;
        let compute = self.flop_cycles + int_cycles;

        // --- memory ---
        let wide_extra = self.wide_accesses as f64 * (m.mem_penalty_128bit - 1.0);
        let issue = (self.access_index as f64 + wide_extra) / m.mem_issue_per_cycle;
        let est_total_latency = self.sampled_latency as f64 * scale;
        let est_baseline = self.access_index as f64 * self.l1_latency as f64;
        let stall_raw = (est_total_latency - est_baseline).max(0.0);
        let prefetch_hidden = (self.prefetch_hint * m.prefetch_efficiency).clamp(0.0, 1.0);
        let mlp = m.effective_mlp(self.mlp_hint);
        let stall = stall_raw * (1.0 - prefetch_hidden) / mlp;
        // Line-transfer occupancy is pure bandwidth: neither prefetching
        // nor MLP makes the wires wider.
        let fill = self.sampled_fill_cycles * scale;
        let memory = issue.max(fill) + stall;

        // --- branches ---
        let predictable = self.counts.branches - self.counts.unpredictable_branches;
        let expected_misses = predictable as f64 * (1.0 - m.predictable_accuracy)
            + self.counts.unpredictable_branches as f64 * (1.0 - m.unpredictable_accuracy);
        let branch = expected_misses * m.branch_miss_penalty_cycles as f64;

        // --- combine ---
        let core = match m.overlap {
            Overlap::OutOfOrder => compute.max(memory),
            Overlap::InOrder { issue_efficiency } => (compute + memory) / issue_efficiency,
        };
        let total = core + branch;
        let cycles = Cycles::new(total.ceil() as u64);
        let time = m.frequency.cycles(cycles);

        let mut counters = CounterSet::new();
        counters.set(Counter::TotalCycles, cycles.get());
        counters.set(
            Counter::TotalInstructions,
            self.counts.flop_instructions
                + self.counts.int_ops
                + self.counts.loads
                + self.counts.stores
                + self.counts.branches,
        );
        counters.set(Counter::FpOps, self.counts.total_flops());
        counters.set(Counter::L1DataAccesses, self.access_index);
        counters.set(
            Counter::L1DataMisses,
            (self.sampled_l1_misses as f64 * scale) as u64,
        );
        counters.set(
            Counter::L2DataAccesses,
            (self.sampled_l2_accesses as f64 * scale) as u64,
        );
        counters.set(
            Counter::L2DataMisses,
            (self.sampled_l2_misses as f64 * scale) as u64,
        );
        counters.set(
            Counter::TlbDataMisses,
            (self.sampled_tlb_misses as f64 * scale) as u64,
        );
        counters.set(Counter::BranchMispredictions, expected_misses as u64);
        counters.set(Counter::Loads, self.counts.loads);
        counters.set(Counter::Stores, self.counts.stores);

        ExecReport {
            cycles,
            time,
            counters,
            counts: self.counts,
            compute_cycles: compute,
            memory_cycles: memory,
            branch_cycles: branch,
        }
    }

    /// Resets all accumulated state (hierarchy, TLB and tallies) so the
    /// sink can cost a fresh run.
    pub fn reset(&mut self) {
        self.hierarchy.reset();
        self.tlb.reset();
        self.counts = OpCounts::default();
        self.flop_cycles = 0.0;
        self.access_index = 0;
        self.sampled_accesses = 0;
        self.sampled_latency = 0;
        self.sampled_fill_cycles = 0.0;
        self.sampled_l1_misses = 0;
        self.sampled_l2_accesses = 0;
        self.sampled_l2_misses = 0;
        self.sampled_tlb_misses = 0;
        self.wide_accesses = 0;
    }
}

impl Exec for ModelExec {
    fn flop(&mut self, kind: FlopKind, prec: Precision, lanes: u32) {
        #[cfg(feature = "validate")]
        assert!(lanes >= 1, "flop({kind:?}, {prec:?}) with zero lanes");
        let flops = kind.flops() * lanes as u64;
        match prec {
            Precision::F64 => self.counts.flops_f64 += flops,
            Precision::F32 => self.counts.flops_f32 += flops,
        }
        self.counts.flop_instructions += 1;
        let rate = self.model.flop_rate(prec, lanes);
        self.flop_cycles += flops as f64 / rate;
        if matches!(kind, FlopKind::Div | FlopKind::Sqrt) {
            self.counts.long_latency_flops += lanes as u64;
            self.flop_cycles += self.model.long_latency_penalty_cycles * lanes as f64;
        }
    }

    fn int_ops(&mut self, n: u64) {
        self.counts.int_ops += n;
    }

    fn load(&mut self, addr: u64, bytes: u32) {
        self.counts.loads += 1;
        self.counts.load_bytes += bytes as u64;
        self.mem_access(addr, bytes, false);
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        self.counts.stores += 1;
        self.counts.store_bytes += bytes as u64;
        self.mem_access(addr, bytes, true);
    }

    fn branch(&mut self, predictable: bool) {
        self.counts.branches += 1;
        if !predictable {
            self.counts.unpredictable_branches += 1;
        }
    }

    fn flop_run(&mut self, kind: FlopKind, prec: Precision, lanes: u32, n: u64) {
        // Closed-form batch accounting: one multiply instead of n trait
        // calls. (The cycle total accumulates as `n·(flops/rate)` rather
        // than n separate adds, which is the same real number; the two
        // float orderings are each deterministic.)
        let flops = kind.flops() * lanes as u64;
        match prec {
            Precision::F64 => self.counts.flops_f64 += flops * n,
            Precision::F32 => self.counts.flops_f32 += flops * n,
        }
        self.counts.flop_instructions += n;
        let rate = self.model.flop_rate(prec, lanes);
        self.flop_cycles += n as f64 * (flops as f64 / rate);
        if matches!(kind, FlopKind::Div | FlopKind::Sqrt) {
            self.counts.long_latency_flops += lanes as u64 * n;
            self.flop_cycles += self.model.long_latency_penalty_cycles * (lanes as u64 * n) as f64;
        }
    }

    fn branch_run(&mut self, n: u64, predictable: bool) {
        self.counts.branches += n;
        if !predictable {
            self.counts.unpredictable_branches += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple compute-only loop: n dependent f64 FMAs.
    fn fma_loop(e: &mut ModelExec, n: u64, lanes: u32) {
        for _ in 0..n {
            e.flop(FlopKind::Fma, Precision::F64, lanes);
            e.branch(true);
        }
    }

    #[test]
    fn nehalem_beats_snowball_on_dp_compute() {
        let mut xeon = ModelExec::nehalem();
        fma_loop(&mut xeon, 100_000, 2);
        let rx = xeon.finish();
        let mut arm = ModelExec::snowball();
        fma_loop(&mut arm, 100_000, 2);
        let ra = arm.finish();
        // Same abstract work; Nehalem is faster in both cycles and time.
        assert!(ra.cycles > rx.cycles);
        let ratio = ra.time.as_secs_f64() / rx.time.as_secs_f64();
        assert!(
            ratio > 5.0 && ratio < 60.0,
            "compute ratio should be large but sane, got {ratio}"
        );
    }

    #[test]
    fn f32_simd_helps_nehalem_and_snowball_but_not_tegra2() {
        let run = |mut e: ModelExec| {
            fma_loop(&mut e, 10_000, 4);
            e.finish().cycles.get()
        };
        let run_scalar = |mut e: ModelExec| {
            let mut cycles = 0;
            for _ in 0..4 {
                cycles += 0;
            }
            fma_loop(&mut e, 40_000, 1);
            cycles + e.finish().cycles.get()
        };
        // Vectorised f64 on Snowball ≈ scalar (no DP SIMD).
        let mut v = ModelExec::snowball();
        fma_loop(&mut v, 10_000, 2);
        let vec_dp = v.finish().cycles.get();
        let mut s = ModelExec::snowball();
        fma_loop(&mut s, 20_000, 1);
        let scal_dp = s.finish().cycles.get();
        let rel = vec_dp as f64 / scal_dp as f64;
        // The 2-lane version still pays half the loop branches, so it is
        // slightly ahead — but nowhere near the 2× a real DP SIMD gives.
        assert!(rel > 0.8, "A9 f64 'vector' ≈ scalar, got {rel}");
        // Tegra2 f32 lanes don't help either (no NEON).
        let tegra_vec = run(ModelExec::tegra2());
        let tegra_scal = run_scalar(ModelExec::tegra2());
        // Again only loop-overhead savings, not a real SIMD speed-up.
        assert!(tegra_vec as f64 / tegra_scal as f64 > 0.7);
        // But Nehalem f32 SIMD is much faster than scalar.
        let xeon_vec = run(ModelExec::nehalem());
        let xeon_scal = run_scalar(ModelExec::nehalem());
        assert!((xeon_scal as f64 / xeon_vec as f64) > 2.0);
    }

    #[test]
    fn memory_stalls_dominate_strided_misses() {
        let mut e = ModelExec::snowball();
        // 1 MB sweep touching one element per cache line: mostly misses.
        for i in 0..32_768u64 {
            e.load(i * 32, 4);
        }
        let r = e.finish();
        assert!(r.memory_cycles > r.compute_cycles);
        assert!(r.counters.get(Counter::L1DataMisses) > 30_000);
    }

    #[test]
    fn mlp_hint_divides_stalls_on_ooo() {
        let run = |hint: u32| {
            let mut e = ModelExec::nehalem();
            e.set_mlp_hint(hint);
            for i in 0..100_000u64 {
                e.load(i * 64, 4);
            }
            e.finish().cycles.get()
        };
        let serial = run(1);
        let unrolled = run(8);
        assert!(
            serial as f64 / unrolled as f64 > 3.0,
            "unrolling should expose MLP: {serial} vs {unrolled}"
        );
    }

    #[test]
    fn mlp_capped_on_a9() {
        let run = |hint: u32| {
            let mut e = ModelExec::snowball();
            e.set_mlp_hint(hint);
            for i in 0..100_000u64 {
                e.load(i * 32, 4);
            }
            e.finish().cycles.get()
        };
        let u2 = run(2);
        let u8 = run(8);
        // The A9 can only keep 2 misses outstanding: unrolling past 2
        // does not help.
        assert_eq!(u2, u8);
    }

    #[test]
    fn wide_accesses_penalised_on_arm_only() {
        let run = |mut e: ModelExec, bytes: u32| {
            for i in 0..10_000u64 {
                e.load((i * 16) % 8192, bytes);
            }
            e.finish().cycles.get()
        };
        let arm_narrow = run(ModelExec::snowball(), 8);
        let arm_wide = run(ModelExec::snowball(), 16);
        assert!(arm_wide > arm_narrow, "128-bit splits on the A9 bus");
        let xeon_narrow = run(ModelExec::nehalem(), 8);
        let xeon_wide = run(ModelExec::nehalem(), 16);
        assert_eq!(xeon_wide, xeon_narrow, "no penalty on Nehalem");
    }

    #[test]
    fn branch_mispredictions_cost() {
        let mut pred = ModelExec::nehalem();
        for _ in 0..10_000 {
            pred.branch(true);
        }
        let rp = pred.finish();
        let mut unpred = ModelExec::nehalem();
        for _ in 0..10_000 {
            unpred.branch(false);
        }
        let ru = unpred.finish();
        assert!(ru.branch_cycles > 10.0 * rp.branch_cycles);
    }

    #[test]
    fn sampling_approximates_exact() {
        let run = |rate: u32| {
            let mut e = ModelExec::snowball().with_sample_rate(rate);
            // A repetitive sweep, so windows are representative.
            for sweep in 0..8u64 {
                let _ = sweep;
                for i in 0..65_536u64 {
                    e.load(i * 4 % (256 * 1024), 4);
                }
            }
            e.finish().cycles.get() as f64
        };
        let exact = run(1);
        let sampled = run(4);
        let err = (sampled - exact).abs() / exact;
        assert!(err < 0.25, "sampling error {err} too large");
    }

    #[test]
    fn report_gflops_consistent() {
        let mut e = ModelExec::nehalem();
        fma_loop(&mut e, 1_000_000, 2);
        let r = e.finish();
        let g = r.gflops();
        // 4M flops; Nehalem peak 10.64 GFLOPS — must be under peak and
        // over half of it for this pure-FMA loop.
        assert!(g < 10.64 + 1e-6, "gflops {g}");
        assert!(g > 4.0, "gflops {g}");
    }

    #[test]
    fn page_table_routing_affects_caches() {
        use mb_mem::pages::{PageAllocator, PagePolicy};
        // Random pages near the L1 size produce at least as many misses
        // as contiguous ones.
        let run = |policy: PagePolicy, seed: u64| {
            let mut alloc = PageAllocator::new(policy, 4096, 1 << 18, seed);
            let table = alloc.allocate(32 * 1024);
            let mut e = ModelExec::snowball().with_page_table(table);
            for _ in 0..4 {
                for i in 0..(32 * 1024 / 4) as u64 {
                    e.load(i * 4, 4);
                }
            }
            e.finish().counters.get(Counter::L1DataMisses)
        };
        let contiguous = run(PagePolicy::Contiguous, 0);
        let random: u64 = (0..6).map(|s| run(PagePolicy::Random, s)).sum::<u64>() / 6;
        assert!(random >= contiguous);
    }

    #[test]
    fn reset_gives_fresh_run() {
        let mut e = ModelExec::snowball();
        e.load(0, 4);
        e.flop(FlopKind::Add, Precision::F64, 1);
        let r1 = e.finish();
        e.reset();
        let r2 = e.finish();
        assert!(r1.cycles.get() > 0);
        assert_eq!(r2.cycles.get(), 0);
        assert_eq!(r2.counts.loads, 0);
    }

    #[test]
    #[should_panic(expected = "sample rate must be at least 1")]
    fn zero_sample_rate_panics() {
        let _ = ModelExec::snowball().with_sample_rate(0);
    }
}
