//! PAPI-style hardware counters.
//!
//! The paper's auto-tuning study (Section V.B, Figure 7) reads two PAPI
//! counters — total cycles and cache accesses — for each generated
//! variant of the BigDFT magicfilter. [`CounterSet`] is our substitute:
//! the same named-counter interface, populated by the simulators instead
//! of the PMU.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Counter identifiers, named after their PAPI equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Counter {
    /// `PAPI_TOT_CYC` — total cycles.
    TotalCycles,
    /// `PAPI_TOT_INS` — total instructions (abstract ops here).
    TotalInstructions,
    /// `PAPI_FP_OPS` — floating-point operations.
    FpOps,
    /// `PAPI_L1_DCA` — L1 data-cache accesses.
    L1DataAccesses,
    /// `PAPI_L1_DCM` — L1 data-cache misses.
    L1DataMisses,
    /// `PAPI_L2_DCA` — L2 data-cache accesses.
    L2DataAccesses,
    /// `PAPI_L2_DCM` — L2 data-cache misses.
    L2DataMisses,
    /// `PAPI_TLB_DM` — data-TLB misses.
    TlbDataMisses,
    /// `PAPI_BR_MSP` — mispredicted branches.
    BranchMispredictions,
    /// `PAPI_LD_INS` — load instructions.
    Loads,
    /// `PAPI_SR_INS` — store instructions.
    Stores,
}

impl Counter {
    /// The PAPI name of this counter.
    pub fn papi_name(self) -> &'static str {
        match self {
            Counter::TotalCycles => "PAPI_TOT_CYC",
            Counter::TotalInstructions => "PAPI_TOT_INS",
            Counter::FpOps => "PAPI_FP_OPS",
            Counter::L1DataAccesses => "PAPI_L1_DCA",
            Counter::L1DataMisses => "PAPI_L1_DCM",
            Counter::L2DataAccesses => "PAPI_L2_DCA",
            Counter::L2DataMisses => "PAPI_L2_DCM",
            Counter::TlbDataMisses => "PAPI_TLB_DM",
            Counter::BranchMispredictions => "PAPI_BR_MSP",
            Counter::Loads => "PAPI_LD_INS",
            Counter::Stores => "PAPI_SR_INS",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.papi_name())
    }
}

/// A set of counter values, as returned by one measured run.
///
/// # Examples
///
/// ```
/// use mb_cpu::counters::{Counter, CounterSet};
/// let mut c = CounterSet::new();
/// c.add(Counter::TotalCycles, 1000);
/// c.add(Counter::TotalCycles, 500);
/// assert_eq!(c.get(Counter::TotalCycles), 1500);
/// assert_eq!(c.get(Counter::L1DataMisses), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSet {
    values: BTreeMap<Counter, u64>,
}

impl CounterSet {
    /// Creates an empty set (all counters read 0).
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Reads a counter (0 if never written).
    pub fn get(&self, c: Counter) -> u64 {
        self.values.get(&c).copied().unwrap_or(0)
    }

    /// Sets a counter.
    pub fn set(&mut self, c: Counter, v: u64) {
        self.values.insert(c, v);
    }

    /// Adds to a counter.
    pub fn add(&mut self, c: Counter, v: u64) {
        *self.values.entry(c).or_insert(0) += v;
    }

    /// Iterates over `(counter, value)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        self.values.iter().map(|(&c, &v)| (c, v))
    }

    /// Derived metric: instructions per cycle (0 when no cycles).
    pub fn ipc(&self) -> f64 {
        let cyc = self.get(Counter::TotalCycles);
        if cyc == 0 {
            0.0
        } else {
            self.get(Counter::TotalInstructions) as f64 / cyc as f64
        }
    }

    /// Derived metric: L1 miss ratio (0 when no accesses).
    pub fn l1_miss_ratio(&self) -> f64 {
        let acc = self.get(Counter::L1DataAccesses);
        if acc == 0 {
            0.0
        } else {
            self.get(Counter::L1DataMisses) as f64 / acc as f64
        }
    }

    /// Merges another set by summing counters.
    pub fn merge(&mut self, other: &CounterSet) {
        for (c, v) in other.iter() {
            self.add(c, v);
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, v) in self.iter() {
            writeln!(f, "{:<14} {v}", c.papi_name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_add() {
        let mut s = CounterSet::new();
        assert_eq!(s.get(Counter::FpOps), 0);
        s.set(Counter::FpOps, 10);
        s.add(Counter::FpOps, 5);
        assert_eq!(s.get(Counter::FpOps), 15);
    }

    #[test]
    fn papi_names() {
        assert_eq!(Counter::TotalCycles.papi_name(), "PAPI_TOT_CYC");
        assert_eq!(Counter::L1DataAccesses.to_string(), "PAPI_L1_DCA");
    }

    #[test]
    fn derived_metrics() {
        let mut s = CounterSet::new();
        assert_eq!(s.ipc(), 0.0);
        s.set(Counter::TotalCycles, 100);
        s.set(Counter::TotalInstructions, 250);
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        s.set(Counter::L1DataAccesses, 1000);
        s.set(Counter::L1DataMisses, 25);
        assert!((s.l1_miss_ratio() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn merge_sums() {
        let mut a = CounterSet::new();
        a.set(Counter::Loads, 3);
        let mut b = CounterSet::new();
        b.set(Counter::Loads, 4);
        b.set(Counter::Stores, 1);
        a.merge(&b);
        assert_eq!(a.get(Counter::Loads), 7);
        assert_eq!(a.get(Counter::Stores), 1);
    }

    #[test]
    fn display_lists_counters() {
        let mut s = CounterSet::new();
        s.set(Counter::TotalCycles, 42);
        let text = s.to_string();
        assert!(text.contains("PAPI_TOT_CYC"));
        assert!(text.contains("42"));
    }

    #[test]
    fn iter_is_stable_order() {
        let mut s = CounterSet::new();
        s.set(Counter::Stores, 1);
        s.set(Counter::TotalCycles, 2);
        let order: Vec<Counter> = s.iter().map(|(c, _)| c).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
    }
}
