//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` widely but never
//! serialises through a data format (there is no `serde_json` in the
//! tree), so the derives only need to *exist*. The sibling `serde` stub
//! defines the traits with blanket impls; these derive macros therefore
//! expand to nothing at all.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
