//! Offline stand-in for `crossbeam`, providing the scoped-thread subset
//! the workspace uses (`crossbeam::thread::scope`), backed by
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from the real crate are deliberate and tiny:
//!
//! * `Scope::spawn` takes a plain `FnOnce()` closure (the real crate
//!   passes the scope back into the closure; no caller here needs it);
//! * `scope` catches a panicking *closure* as well as panicking child
//!   threads, returning both as `Err`.

#![forbid(unsafe_code)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::panic::AssertUnwindSafe;

    /// A handle to a scope for spawning borrowed-data threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries its panic
        /// payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Panics in the child are reported when
        /// the scope exits (or by `join`), exactly as with
        /// `std::thread::scope`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Creates a scope in which threads borrowing from the environment
    /// can be spawned; all are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sum = super::thread::scope(|s| {
            let a = s.spawn(|| data[..2].iter().sum::<u64>());
            let b = s.spawn(|| data[2..].iter().sum::<u64>());
            a.join().expect("no panic") + b.join().expect("no panic")
        })
        .expect("scope completes");
        assert_eq!(sum, 10);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|| panic!("boom"));
            h.join().is_err()
        });
        assert_eq!(r.ok(), Some(true));
    }
}
