//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, and nothing in the
//! workspace actually drives a serialiser (reports are rendered by hand
//! or written as text/CSV/JSON directly). This stub keeps the ubiquitous
//! `#[derive(Serialize, Deserialize)]` annotations compiling:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits with blanket
//!   impls, so any `T: Serialize` bound is satisfied;
//! * the re-exported derive macros expand to nothing.
//!
//! If real serialisation is ever needed, replace this stub with the
//! actual crate — the annotations in the workspace are already correct.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
