//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness exposing the API subset the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `criterion_group!` / `criterion_main!`).
//!
//! Timing model: each benchmark body is warmed up once, then timed over
//! enough iterations to fill a short measurement window; the mean time
//! per iteration is printed. There is no statistical analysis, outlier
//! rejection, or HTML report — this exists so `cargo bench` compiles and
//! produces honest rough numbers without network access to crates.io.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `{function_name}/{parameter}`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
    window: Duration,
}

impl Bencher {
    /// Runs `body` repeatedly inside the measurement window, recording
    /// total elapsed time and iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        std::hint::black_box(body()); // warm-up, untimed
        let window = self.window;
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(body());
            iters += 1;
            if start.elapsed() >= window {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            window: self.criterion.window,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX)
        };
        println!(
            "{}/{:<40} {:>12.3?} /iter  ({} iters)",
            self.name, id, per_iter, b.iters
        );
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(&id.to_string(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Accepted for API compatibility; sampling is time-window based
    /// here, so the count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (no-op; prints nothing).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // MB_BENCH_WINDOW_MS shortens or lengthens measurement windows,
        // e.g. in CI smoke runs.
        let ms = std::env::var("MB_BENCH_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            window: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }

    /// Benchmarks `f` at the top level (its own single-entry group).
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let name = id.to_string();
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("MB_BENCH_WINDOW_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.sample_size(10);
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("f", "64b").to_string(), "f/64b");
    }
}
