//! Offline stand-in for `proptest`: a deterministic mini
//! property-testing harness covering the subset of the API this
//! workspace uses.
//!
//! Supported surface:
//!
//! * `proptest! { ... }` blocks of `fn name(arg in strategy, ...)` tests,
//!   with optional `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * strategies: integer and float `Range`s, `any::<T>()`,
//!   `prop::bool::ANY`, `prop::collection::vec(elem, len_range)`, and
//!   tuples of strategies;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: inputs are drawn from a SplitMix64 stream seeded from the test
//! function's name, so every run of a given test sees the same cases.

#![forbid(unsafe_code)]

/// Input generation: the [`Strategy`](strategy::Strategy) trait and
/// implementations for ranges and tuples.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for producing values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    impl_int_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.next_unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
}

/// `any::<T>()` — full-domain strategies for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign- and magnitude-varied; never NaN/inf.
            let unit = rng.next_unit_f64() * 2.0 - 1.0;
            let exp = (rng.next_u64() % 41) as i32 - 20;
            unit * (2f64).powi(exp)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Runner plumbing: configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-block configuration; only `cases` is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of input cases each test function is run with.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 generator seeded from the test name — deterministic
    /// across runs and platforms.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an FNV-1a hash of `name`.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Namespaced strategy constructors (`prop::collection`, `prop::bool`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from a range.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// Vector of `elem` values with length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { elem, len }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy yielding either boolean with equal probability.
        pub struct BoolAny;

        /// The uniform boolean strategy.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes
/// a zero-argument function run against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies respect their bounds; vec lengths too.
        #[test]
        fn bounds_hold(
            x in 10u64..20,
            f in -2.0f64..2.0,
            v in prop::collection::vec(0u8..5, 3..9),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(v.len() >= 3 && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Tuple strategies compose; `any` covers the full domain.
        #[test]
        fn tuples_and_any(
            (a, b, k) in (0u64..100, 0usize..8, 1u32..4),
            s in any::<u64>(),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(a < 100 && b < 8 && (1..4).contains(&k));
            let _ = (s, flag);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
