//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives
//! behind the `parking_lot` API shape the workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a
//! poisoned lock (a thread panicked while holding it) is transparently
//! recovered rather than propagated — matching `parking_lot`'s
//! no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7; // no panic, no Result
        assert_eq!(*m.lock(), 7);
    }
}
