#!/usr/bin/env bash
# Local CI gate: build, full test suite, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mb-check (call-graph determinism lints, SARIF + schema gate)"
# The check itself: exits nonzero on any finding not in the reviewed
# `.mb-check-baseline.json`, so new debt fails CI while grandfathered
# findings stay visible in the SARIF report. The SARIF document is then
# validated against the checked-in required-path schema snapshot. Both
# analysis runs must stay inside a 5 s wall-time budget.
CHECK_DIR="$(mktemp -d)"
check_start=$(date +%s%N)
cargo run --release -q -p mb-check -- check
cargo run --release -q -p mb-check -- check --format sarif > "$CHECK_DIR/mb-check.sarif"
check_elapsed_ms=$(( ($(date +%s%N) - check_start) / 1000000 ))
cargo run --release -q -p mb-check -- validate-sarif "$CHECK_DIR/mb-check.sarif"
rm -rf "$CHECK_DIR"
echo "    mb-check wall time: ${check_elapsed_ms} ms (budget 5000 ms)"
if [ "$check_elapsed_ms" -ge 5000 ]; then
    echo "mb-check exceeded its 5 s wall-time budget"; exit 1
fi

echo "==> validate-feature smoke (runtime invariant sanitizer)"
# Re-asserts every pinned digest — including FIG3_FAULTED_QUICK_DIGEST,
# the fault-injected Figure 3 run — with the sanitizer compiled in.
# The normal-build pins run in the test suite above (figure_digests.rs).
cargo test --release -p montblanc --features validate --test validate_smoke --quiet

echo "==> fault-injection smoke (degraded-but-completed Figure 3)"
cargo run --release -p mb-bench --bin fault_ablation -- --quick

echo "==> perfsuite (healthy-path check: no faults planned, no overhead, bit-identical)"
cargo run --release -p mb-bench --bin perfsuite -- --quick

echo "==> mb-lab 2-shard campaign smoke (shard, merge, pinned-digest check)"
# Two sharded processes split the fig3-quick campaign, the merge stitches
# their journals back into canonical slot order, and the digest gate
# proves the sharded result is bit-identical to the pinned figure digest.
LAB_DIR="$(mktemp -d)"
trap 'rm -rf "$LAB_DIR"' EXIT
cargo run --release -p mb-lab --bin mb-lab -- \
    run fig3-quick --journal "$LAB_DIR/shard0.journal" --shard 0/2
MB_SHARD=1/2 cargo run --release -p mb-lab --bin mb-lab -- \
    run fig3-quick --journal "$LAB_DIR/shard1.journal"
cargo run --release -p mb-lab --bin mb-lab -- \
    merge "$LAB_DIR/merged.journal" "$LAB_DIR/shard0.journal" "$LAB_DIR/shard1.journal"
cargo run --release -p mb-lab --bin mb-lab -- \
    digest "$LAB_DIR/merged.journal" --expect 0xd0d5f716d0b30356 --check

echo "==> mb-lab truncated paper-shard smoke (--max-slots, then complete + merge)"
# The same pipeline over a *paper* grid: both fig5-paper shards first run
# a --max-slots-truncated prefix (the deterministic front-to-back walk CI
# can afford), then complete, merge, and must reproduce the pinned
# paper digest bit for bit.
SMOKE0="$(cargo run --release -p mb-lab --bin mb-lab -- \
    run fig5-paper --journal "$LAB_DIR/paper0.journal" --shard 0/2 --max-slots 8)"
grep -q "8 executed" <<<"$SMOKE0" || { echo "max-slots bound not honored: $SMOKE0"; exit 1; }
SMOKE1="$(MB_SHARD=1/2 MB_MAX_SLOTS=8 cargo run --release -p mb-lab --bin mb-lab -- \
    run fig5-paper --journal "$LAB_DIR/paper1.journal")"
grep -q "8 executed" <<<"$SMOKE1" || { echo "MB_MAX_SLOTS bound not honored: $SMOKE1"; exit 1; }
cargo run --release -p mb-lab --bin mb-lab -- \
    run fig5-paper --journal "$LAB_DIR/paper0.journal" --shard 0/2
MB_SHARD=1/2 cargo run --release -p mb-lab --bin mb-lab -- \
    run fig5-paper --journal "$LAB_DIR/paper1.journal"
cargo run --release -p mb-lab --bin mb-lab -- \
    merge "$LAB_DIR/paper-merged.journal" "$LAB_DIR/paper0.journal" "$LAB_DIR/paper1.journal"
cargo run --release -p mb-lab --bin mb-lab -- \
    digest "$LAB_DIR/paper-merged.journal" --expect 0xc49f00d6ca0ac4ad --check

echo "==> mb-lab supervise chaos smoke (SIGKILL + duplicate segment -> pinned digest)"
# The crash-tolerant supervisor end to end: a 2-shard fig3-quick family
# with one seeded SIGKILL injected mid-run. The supervisor must restart
# the killed worker, resume from its journal, push every shard through
# the mbseg1 export/ingest transport (re-ingesting shard 0's segment as
# a deliberate duplicate upload), merge, and verify the pinned digest —
# all inside a 60 s wall-time budget.
sup_start=$(date +%s%N)
SUP_OUT="$(cargo run --release -p mb-lab --bin mb-lab -- \
    supervise fig3-quick --dir "$LAB_DIR/family" --shards 2 \
    --chaos-kills 1 --poll-ms 10 --task-delay-ms 100)"
sup_elapsed_ms=$(( ($(date +%s%N) - sup_start) / 1000000 ))
grep -q "pinned digest check: ok" <<<"$SUP_OUT" \
    || { echo "supervised family missed the pin: $SUP_OUT"; exit 1; }
grep -q '"chaos_kills": 1' "$LAB_DIR/family/report.json" \
    || { echo "seeded kill did not land (report.json)"; exit 1; }
echo "    supervise wall time: ${sup_elapsed_ms} ms (budget 60000 ms)"
if [ "$sup_elapsed_ms" -ge 60000 ]; then
    echo "supervise smoke exceeded its 60 s wall-time budget"; exit 1
fi

echo "==> mb-lab exit-code contract (CLI + chaos suites)"
# The documented exit taxonomy (2 usage / 3 corruption / 4 slot panic /
# 5 env misconfig / 6 protocol / 7 unavailable) and the chaos harnesses
# are tier-1, but name them explicitly so a contract regression fails
# loudly here, not as one line in the workspace wall of dots.
cargo test --release -p mb-lab --test cli --test supervise_chaos --quiet
cargo test --release -p mb-lab \
    --test protocol_format --test serve_soak --test serve_chaos --quiet

echo "==> mb-lab serve smoke (submit/watch/fetch over the socket, SIGKILL + resume)"
# The always-on service end to end: start a server, submit fig3-quick
# over the mbsrv1 socket, SIGKILL the whole server process group
# mid-campaign, restart on the same data dir, and the resumed family
# must still converge to the pinned digest — fetched over the wire,
# chain-verified, and digest-checked through the CLI gate. Budget 60 s.
serve_start=$(date +%s%N)
MB_LAB=target/release/mb-lab
SERVE_DIR="$LAB_DIR/serve"
mkdir -p "$SERVE_DIR"
setsid "$MB_LAB" serve --dir "$SERVE_DIR/data" --task-delay-ms 120 \
    > "$SERVE_DIR/serve1.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SERVE_DIR/data/addr.txt" ] && break; sleep 0.1; done
ADDR="$(cat "$SERVE_DIR/data/addr.txt")"
SUB_OUT="$("$MB_LAB" submit fig3-quick --addr "$ADDR" --shards 2)"
JOB="$(sed -n 's/^submitted \(j[0-9]*\) .*/\1/p' <<<"$SUB_OUT")"
[ -n "$JOB" ] || { echo "submit did not yield a job id: $SUB_OUT"; exit 1; }
for _ in $(seq 1 200); do
    "$MB_LAB" status "$JOB" --addr "$ADDR" | grep -qE ' [1-9][0-9]*/' && break
    sleep 0.1
done
kill -9 -- "-$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
setsid "$MB_LAB" serve --dir "$SERVE_DIR/data" \
    > "$SERVE_DIR/serve2.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SERVE_DIR/data/addr.txt" ] && "$MB_LAB" ping --addr "$(cat "$SERVE_DIR/data/addr.txt")" \
        > /dev/null 2>&1 && break
    sleep 0.1
done
ADDR="$(cat "$SERVE_DIR/data/addr.txt")"
WATCH_OUT="$("$MB_LAB" watch "$JOB" --addr "$ADDR")"
grep -q "pinned digest check: ok" <<<"$WATCH_OUT" \
    || { echo "resumed serve job missed the pin: $WATCH_OUT"; exit 1; }
"$MB_LAB" fetch "$JOB" "$SERVE_DIR/fetched.seg" --addr "$ADDR"
"$MB_LAB" ingest "$SERVE_DIR/remote.journal" "$SERVE_DIR/fetched.seg"
"$MB_LAB" digest "$SERVE_DIR/remote.journal" --expect 0xd0d5f716d0b30356 --check
"$MB_LAB" shutdown --addr "$ADDR"
wait "$SERVE_PID" 2>/dev/null || true
serve_elapsed_ms=$(( ($(date +%s%N) - serve_start) / 1000000 ))
echo "    serve smoke wall time: ${serve_elapsed_ms} ms (budget 60000 ms)"
if [ "$serve_elapsed_ms" -ge 60000 ]; then
    echo "serve smoke exceeded its 60 s wall-time budget"; exit 1
fi

echo "==> campaign_eta (paper-grid cost model -> BENCH_campaigns.json)"
cargo run --release -p mb-bench --bin campaign_eta

echo "CI green."
