#!/usr/bin/env bash
# Local CI gate: build, full test suite, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mb-check (determinism lints)"
cargo run --release -p mb-check

echo "==> validate-feature smoke (runtime invariant sanitizer)"
cargo test --release -p montblanc --features validate --test validate_smoke --quiet

echo "CI green."
