#!/usr/bin/env bash
# Local CI gate: build, full test suite, lints. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mb-check (determinism lints)"
cargo run --release -p mb-check

echo "==> validate-feature smoke (runtime invariant sanitizer)"
# Re-asserts every pinned digest — including FIG3_FAULTED_QUICK_DIGEST,
# the fault-injected Figure 3 run — with the sanitizer compiled in.
# The normal-build pins run in the test suite above (figure_digests.rs).
cargo test --release -p montblanc --features validate --test validate_smoke --quiet

echo "==> fault-injection smoke (degraded-but-completed Figure 3)"
cargo run --release -p mb-bench --bin fault_ablation -- --quick

echo "==> perfsuite (healthy-path check: no faults planned, no overhead, bit-identical)"
cargo run --release -p mb-bench --bin perfsuite -- --quick

echo "==> mb-lab 2-shard campaign smoke (shard, merge, pinned-digest check)"
# Two sharded processes split the fig3-quick campaign, the merge stitches
# their journals back into canonical slot order, and the digest gate
# proves the sharded result is bit-identical to the pinned figure digest.
LAB_DIR="$(mktemp -d)"
trap 'rm -rf "$LAB_DIR"' EXIT
cargo run --release -p mb-lab --bin mb-lab -- \
    run fig3-quick --journal "$LAB_DIR/shard0.journal" --shard 0/2
MB_SHARD=1/2 cargo run --release -p mb-lab --bin mb-lab -- \
    run fig3-quick --journal "$LAB_DIR/shard1.journal"
cargo run --release -p mb-lab --bin mb-lab -- \
    merge "$LAB_DIR/merged.journal" "$LAB_DIR/shard0.journal" "$LAB_DIR/shard1.journal"
cargo run --release -p mb-lab --bin mb-lab -- \
    digest "$LAB_DIR/merged.journal" --expect 0xd0d5f716d0b30356 --check

echo "CI green."
